#include "src/io/fault_injection_env.h"

namespace p2kvs {

namespace {
class FaultInjectionWritableFileImpl;
}  // namespace

class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                             FaultInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      env_->OnAppend(fname_, data.size());
    }
    return s;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    Status s = base_->Sync();
    if (s.ok()) {
      env_->OnSync(fname_);
    }
    return s;
  }

  Status Close() override {
    // Note: Close deliberately does NOT mark data as synced; closing a file
    // does not make it durable across power loss.
    return base_->Close();
  }

 private:
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

// Positional-write tracking: each successful Write records the pre-image of
// the overwritten range; Crash() replays the pre-images in reverse and then
// truncates to the last synced size.
class FaultInjectionRandomWritableFile final : public RandomWritableFile {
 public:
  FaultInjectionRandomWritableFile(std::string fname,
                                   std::unique_ptr<RandomWritableFile> base,
                                   FaultInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Write(uint64_t offset, const Slice& data) override {
    FaultInjectionEnv::UndoEntry entry;
    entry.offset = offset;
    if (!data.empty()) {
      // Capture the bytes about to be overwritten. A short (or empty) read
      // means the write extends EOF; the extension is undone by the final
      // truncate in Crash(), so only existing bytes need a pre-image.
      std::string scratch(data.size(), '\0');
      Slice old_bytes;
      Status rs = base_->Read(offset, data.size(), &old_bytes, scratch.data());
      if (rs.ok()) {
        entry.old_data.assign(old_bytes.data(), old_bytes.size());
      }
    }
    Status s = base_->Write(offset, data);
    if (s.ok()) {
      env_->OnRandomWrite(fname_, std::move(entry));
    }
    return s;
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    return base_->Read(offset, n, result, scratch);
  }

  Status Sync() override {
    Status s = base_->Sync();
    if (s.ok()) {
      env_->OnRandomSync(fname_);
    }
    return s;
  }

  Status Truncate(uint64_t size) override {
    Status s = base_->Truncate(size);
    if (s.ok()) {
      // Treated as a barrier for tracking purposes: no engine in this repo
      // truncates a slot file mid-stream, and mixing a resize into the undo
      // log would make replay ambiguous.
      env_->OnRandomTruncate(fname_, size);
    }
    return s;
  }

  Status Close() override {
    // Like WritableFile: closing does not make unsynced writes durable.
    return base_->Close();
  }

 private:
  const std::string fname_;
  std::unique_ptr<RandomWritableFile> base_;
  FaultInjectionEnv* env_;
};

Status FaultInjectionEnv::NewWritableFile(const std::string& f,
                                          std::unique_ptr<WritableFile>* r) {
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewWritableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  OnCreate(f, 0);
  *r = std::make_unique<FaultInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(const std::string& f,
                                            std::unique_ptr<WritableFile>* r) {
  uint64_t size = 0;
  if (target()->FileExists(f)) {
    // A silent zero would mark the whole pre-existing prefix as unsynced and
    // let a simulated crash erase durable bytes.
    Status size_status = target()->GetFileSize(f, &size);
    if (!size_status.ok()) {
      return size_status;
    }
  }
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewAppendableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  {
    MutexLock lock(&mu_);
    auto it = files_.find(f);
    if (it == files_.end()) {
      // Pre-existing (or new) file whose on-disk prefix is treated as
      // durable; only bytes appended from now on are at risk.
      files_[f] = FileInfo{size, size};
    }
  }
  *r = std::make_unique<FaultInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomWritableFile(const std::string& f,
                                                std::unique_ptr<RandomWritableFile>* r) {
  uint64_t size = 0;
  if (target()->FileExists(f)) {
    // Same hazard as NewAppendableFile: the probed size seeds the
    // durable-prefix bookkeeping.
    Status size_status = target()->GetFileSize(f, &size);
    if (!size_status.ok()) {
      return size_status;
    }
  }
  std::unique_ptr<RandomWritableFile> base;
  Status s = target()->NewRandomWritableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  {
    MutexLock lock(&mu_);
    if (random_files_.find(f) == random_files_.end()) {
      // Existing on-disk prefix is treated as durable (same convention as
      // NewAppendableFile); only writes from now on are at risk.
      random_files_[f] = RandomFileInfo{size, {}};
    }
  }
  *r = std::make_unique<FaultInjectionRandomWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& f) {
  {
    MutexLock lock(&mu_);
    files_.erase(f);
    random_files_.erase(f);
  }
  return target()->RemoveFile(f);
}

Status FaultInjectionEnv::RenameFile(const std::string& s, const std::string& t) {
  {
    MutexLock lock(&mu_);
    auto it = files_.find(s);
    if (it != files_.end()) {
      files_[t] = it->second;
      files_.erase(it);
    }
    auto rit = random_files_.find(s);
    if (rit != random_files_.end()) {
      random_files_[t] = std::move(rit->second);
      random_files_.erase(rit);
    }
  }
  return target()->RenameFile(s, t);
}

void FaultInjectionEnv::OnCreate(const std::string& fname, uint64_t initial_size) {
  MutexLock lock(&mu_);
  files_[fname] = FileInfo{initial_size, initial_size};
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  MutexLock lock(&mu_);
  files_[fname].current_size += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  MutexLock lock(&mu_);
  auto it = files_.find(fname);
  if (it != files_.end()) {
    it->second.synced_size = it->second.current_size;
  }
}

void FaultInjectionEnv::OnRandomWrite(const std::string& fname, UndoEntry entry) {
  MutexLock lock(&mu_);
  random_files_[fname].undo.push_back(std::move(entry));
}

void FaultInjectionEnv::OnRandomSync(const std::string& fname) {
  MutexLock lock(&mu_);
  auto it = random_files_.find(fname);
  if (it != random_files_.end()) {
    it->second.undo.clear();
    uint64_t size = 0;
    // Void hook: keep the previous synced_size on a probe failure rather
    // than clobbering the crash-test bookkeeping with zero.
    if (target()->GetFileSize(fname, &size).ok()) {
      it->second.synced_size = size;
    }
  }
}

void FaultInjectionEnv::OnRandomTruncate(const std::string& fname, uint64_t size) {
  MutexLock lock(&mu_);
  auto it = random_files_.find(fname);
  if (it != random_files_.end()) {
    it->second.undo.clear();
    it->second.synced_size = size;
  }
}

uint64_t FaultInjectionEnv::UnsyncedBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, info] : files_) {
    total += info.current_size - info.synced_size;
  }
  return total;
}

Status FaultInjectionEnv::Crash() {
  std::map<std::string, FileInfo> files;
  std::map<std::string, RandomFileInfo> random_files;
  {
    MutexLock lock(&mu_);
    files = files_;
    random_files = std::move(random_files_);
  }
  // Revert positional writes: undo entries in reverse restore each
  // overwritten range to its pre-write contents, then truncating to the last
  // synced size discards any EOF extension.
  for (auto& [name, info] : random_files) {
    bool dirty = !info.undo.empty();
    if (!dirty) {
      uint64_t size = 0;
      if (target()->FileExists(name)) {
        Status size_status = target()->GetFileSize(name, &size);
        if (!size_status.ok()) {
          return size_status;
        }
      }
      dirty = size != info.synced_size;
    }
    if (!dirty || !target()->FileExists(name)) {
      MutexLock lock(&mu_);
      random_files_[name] = RandomFileInfo{info.synced_size, {}};
      continue;
    }
    std::unique_ptr<RandomWritableFile> file;
    Status s = target()->NewRandomWritableFile(name, &file);
    if (!s.ok()) {
      return s;
    }
    for (auto it = info.undo.rbegin(); it != info.undo.rend(); ++it) {
      if (!it->old_data.empty()) {
        s = file->Write(it->offset, Slice(it->old_data));
        if (!s.ok()) {
          return s;
        }
      }
    }
    s = file->Truncate(info.synced_size);
    if (!s.ok()) {
      return s;
    }
    // Restore must land on disk: callers re-open and reread the file assuming
    // the pre-crash image is durable again.
    s = file->Sync();
    if (!s.ok()) {
      return s;
    }
    s = file->Close();
    if (!s.ok()) {
      return s;
    }
    MutexLock lock(&mu_);
    random_files_[name] = RandomFileInfo{info.synced_size, {}};
  }
  for (auto& [name, info] : files) {
    if (info.current_size == info.synced_size) {
      continue;
    }
    if (!target()->FileExists(name)) {
      continue;
    }
    // Truncate by rewriting the synced prefix (the base Env API is
    // append-only for WritableFile).
    std::string contents;
    Status s = ReadFileToString(target(), name, &contents);
    if (!s.ok()) {
      return s;
    }
    if (contents.size() > info.synced_size) {
      contents.resize(info.synced_size);
    }
    s = WriteStringToFile(target(), contents, name, /*sync=*/true);
    if (!s.ok()) {
      return s;
    }
    MutexLock lock(&mu_);
    auto it = files_.find(name);
    if (it != files_.end()) {
      it->second.current_size = it->second.synced_size;
    }
  }
  return Status::OK();
}

}  // namespace p2kvs
