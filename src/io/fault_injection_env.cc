#include "src/io/fault_injection_env.h"

namespace p2kvs {

namespace {
class FaultInjectionWritableFileImpl;
}  // namespace

class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                             FaultInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      env_->OnAppend(fname_, data.size());
    }
    return s;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    Status s = base_->Sync();
    if (s.ok()) {
      env_->OnSync(fname_);
    }
    return s;
  }

  Status Close() override {
    // Note: Close deliberately does NOT mark data as synced; closing a file
    // does not make it durable across power loss.
    return base_->Close();
  }

 private:
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

Status FaultInjectionEnv::NewWritableFile(const std::string& f,
                                          std::unique_ptr<WritableFile>* r) {
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewWritableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  OnCreate(f, 0);
  *r = std::make_unique<FaultInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(const std::string& f,
                                            std::unique_ptr<WritableFile>* r) {
  uint64_t size = 0;
  if (target()->FileExists(f)) {
    target()->GetFileSize(f, &size);
  }
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewAppendableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(f);
    if (it == files_.end()) {
      // Pre-existing (or new) file whose on-disk prefix is treated as
      // durable; only bytes appended from now on are at risk.
      files_[f] = FileInfo{size, size};
    }
  }
  *r = std::make_unique<FaultInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& f) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(f);
  }
  return target()->RemoveFile(f);
}

Status FaultInjectionEnv::RenameFile(const std::string& s, const std::string& t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(s);
    if (it != files_.end()) {
      files_[t] = it->second;
      files_.erase(it);
    }
  }
  return target()->RenameFile(s, t);
}

void FaultInjectionEnv::OnCreate(const std::string& fname, uint64_t initial_size) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname] = FileInfo{initial_size, initial_size};
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname].current_size += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  if (it != files_.end()) {
    it->second.synced_size = it->second.current_size;
  }
}

uint64_t FaultInjectionEnv::UnsyncedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, info] : files_) {
    total += info.current_size - info.synced_size;
  }
  return total;
}

Status FaultInjectionEnv::Crash() {
  std::map<std::string, FileInfo> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files = files_;
  }
  for (auto& [name, info] : files) {
    if (info.current_size == info.synced_size) {
      continue;
    }
    if (!target()->FileExists(name)) {
      continue;
    }
    // Truncate by rewriting the synced prefix (the base Env API is
    // append-only for WritableFile).
    std::string contents;
    Status s = ReadFileToString(target(), name, &contents);
    if (!s.ok()) {
      return s;
    }
    if (contents.size() > info.synced_size) {
      contents.resize(info.synced_size);
    }
    s = WriteStringToFile(target(), contents, name, /*sync=*/true);
    if (!s.ok()) {
      return s;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it != files_.end()) {
      it->second.current_size = it->second.synced_size;
    }
  }
  return Status::OK();
}

}  // namespace p2kvs
