// Env: the storage/OS abstraction every engine in this repo is written
// against (leveldb-style). Concrete implementations:
//   * PosixEnv       — the real filesystem (Env::Default()).
//   * MemEnv         — fully in-memory, for fast hermetic tests.
//   * ThrottledEnv   — device models (HDD / SATA SSD / NVMe), see device_model.h.
//   * FaultInjectionEnv — crash simulation, see fault_injection_env.h.

#ifndef P2KVS_SRC_IO_ENV_H_
#define P2KVS_SRC_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

// Sequential read-only file (WAL replay, MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Reads up to n bytes. *result points into scratch (or an internal buffer)
  // and is valid until the next call.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random access read-only file (SSTs, slab files).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Thread-safe positional read.
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;

  // Kernel-visible descriptor for submission/completion backends (io_uring).
  // Default -1 = "no raw fd": the async layer then routes ops through the
  // virtual Read instead. Wrapper files (throttle, fault injection) keep the
  // default, so a device model or injector can never be bypassed — only the
  // innermost Posix file advertises its fd.
  virtual int raw_fd() const { return -1; }
};

// Append-only writable file (WAL, SST building, MANIFEST).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;  // pushes buffered data to the OS
  virtual Status Sync() = 0;   // durability barrier (fsync/fdatasync)
  virtual Status Close() = 0;
};

// Writable file supporting positional writes (KVell in-place slot updates).
class RandomWritableFile {
 public:
  virtual ~RandomWritableFile() = default;

  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Close() = 0;

  // See RandomAccessFile::raw_fd().
  virtual int raw_fd() const { return -1; }
};

class Env {
 public:
  virtual ~Env() = default;

  // The real filesystem. Never deleted; safe to share across threads.
  static Env* Default();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  // Truncates any existing file.
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  // Appends to an existing file (creates if missing).
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) = 0;
  // Opens (creating if needed) a file for positional read/write.
  virtual Status NewRandomWritableFile(const std::string& fname,
                                       std::unique_ptr<RandomWritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  // Names (not paths) of the children of dir.
  virtual Status GetChildren(const std::string& dir, std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;  // ok if it already exists
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* file_size) = 0;
  virtual Status RenameFile(const std::string& src, const std::string& target) = 0;

  // Removes dirname and everything under it. Implemented on top of the
  // virtual primitives; overridable for efficiency.
  virtual Status RemoveDirRecursively(const std::string& dirname);

  virtual void SleepForMicroseconds(int micros);
};

// Convenience helpers (implemented via the Env virtuals).
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname, bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_ENV_H_
