// ErrorInjectionEnv: injects *transient* storage faults (a failed Sync, a
// short read, an EINTR-style append failure) — the failure mode
// FaultInjectionEnv does not cover. Where FaultInjectionEnv simulates whole-
// system power loss, this env simulates a device or kernel that errors on a
// single operation and then recovers, which is what the error-governance
// layer (retry / degrade / resume) is built to survive.
//
// Faults are injected BEFORE the operation is delegated to the base env, so
// an injected failure never leaves partial state behind; statuses tagged
// transient are therefore safe for RunWithRetry to re-issue. Faults can be
// scripted (fail the next N matching calls) or probabilistic (seeded 1-in-N
// odds, deterministic for a fixed seed and call sequence), optionally
// restricted to paths containing a substring. kShortRead is special: the
// base read succeeds but the result is truncated, exercising callers'
// short-read handling.

#ifndef P2KVS_SRC_IO_ERROR_INJECTION_ENV_H_
#define P2KVS_SRC_IO_ERROR_INJECTION_ENV_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/io/env_wrapper.h"
#include "src/util/mutex.h"
#include "src/util/random.h"
#include "src/util/thread_annotations.h"

namespace p2kvs {

// Operation classes that can fail independently.
enum class FaultOp : int {
  kAppend = 0,          // WritableFile::Append
  kSync = 1,            // WritableFile::Sync / Flush-level durability
  kRead = 2,            // SequentialFile / RandomAccessFile / RandomWritableFile reads
  kShortRead = 3,       // read succeeds but returns fewer bytes than asked
  kNewWritableFile = 4, // file creation (NewWritableFile/Appendable/RandomWritable)
  kRandomWrite = 5,     // RandomWritableFile::Write (KVell slot IO)
  kRandomSync = 6,      // RandomWritableFile::Sync
};
constexpr int kNumFaultOps = 7;

const char* FaultOpName(FaultOp op);

class ErrorInjectionEnv final : public EnvWrapper {
 public:
  explicit ErrorInjectionEnv(Env* base) : EnvWrapper(base), rng_(301) {}

  // --- configuration (thread-safe) ---

  // Scripted: the next `count` matching operations of class `op` fail.
  void FailNext(FaultOp op, int count = 1, bool transient = true);
  // Probabilistic: each matching operation fails with probability 1/one_in
  // (0 disables). Deterministic for a fixed seed and call sequence.
  void SetFailureOdds(FaultOp op, int one_in, bool transient = true);
  void SetSeed(uint32_t seed);
  // Only operations on paths containing `substring` are eligible (empty
  // matches everything).
  void SetPathFilter(const std::string& substring);
  // Latency injection: every matching operation of class `op` sleeps
  // `micros` before delegating (0 disables). A *slow* fault rather than a
  // failed one — the knob the overload tests use to push queue wait past a
  // request deadline deterministically. Honors the path filter.
  void SetOpLatency(FaultOp op, int micros);
  // Clears all scripted counts, odds, and injected latencies; the env
  // becomes a pure pass-through.
  void DisableAll();

  // --- observability ---

  uint64_t injected_faults() const;          // total across all classes
  uint64_t injected_faults(FaultOp op) const;

  // --- Env overrides ---

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override;
  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override;
  Status NewWritableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override;
  Status NewAppendableFile(const std::string& f, std::unique_ptr<WritableFile>* r) override;
  Status NewRandomWritableFile(const std::string& f,
                               std::unique_ptr<RandomWritableFile>* r) override;

 private:
  friend class ErrorInjectionSequentialFile;
  friend class ErrorInjectionRandomAccessFile;
  friend class ErrorInjectionWritableFile;
  friend class ErrorInjectionRandomWritableFile;

  struct OpState {
    int fail_next = 0;   // scripted failures remaining
    int one_in = 0;      // probabilistic odds (0 = off)
    int latency_us = 0;  // injected per-call latency (0 = off)
    bool transient = true;
    uint64_t injected = 0;
  };

  // Returns true (and fills *out with the fault status) when a fault fires
  // for this call. Also used for kShortRead, where the caller truncates the
  // successful read instead of failing it.
  bool MaybeInject(FaultOp op, const std::string& fname, Status* out) EXCLUDES(mu_);

  // Sleeps the configured latency for `op` (if any) before the caller
  // delegates. The sleep itself runs outside mu_.
  void MaybeDelay(FaultOp op, const std::string& fname) EXCLUDES(mu_);

  mutable Mutex mu_;
  std::array<OpState, kNumFaultOps> ops_ GUARDED_BY(mu_);
  std::string path_filter_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_);
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_IO_ERROR_INJECTION_ENV_H_
