#include "src/io/error_injection_env.h"

#include "src/io/io_stats.h"
#include "src/util/trace.h"

namespace p2kvs {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kAppend:
      return "append";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kShortRead:
      return "short-read";
    case FaultOp::kNewWritableFile:
      return "create";
    case FaultOp::kRandomWrite:
      return "random-write";
    case FaultOp::kRandomSync:
      return "random-sync";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// File wrappers. Each consults MaybeInject before delegating; kShortRead is
// applied after a successful base read by truncating the result.
// ---------------------------------------------------------------------------

class ErrorInjectionSequentialFile final : public SequentialFile {
 public:
  ErrorInjectionSequentialFile(std::string fname, std::unique_ptr<SequentialFile> base,
                               ErrorInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    env_->MaybeDelay(FaultOp::kRead, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kRead, fname_, &fault)) {
      return fault;
    }
    Status s = base_->Read(n, result, scratch);
    if (s.ok() && result->size() > 1 &&
        env_->MaybeInject(FaultOp::kShortRead, fname_, &fault)) {
      // Short read: hand back a strict prefix. The consumed file position is
      // unchanged (the bytes were read), matching a kernel short read where
      // the caller must re-issue for the remainder — which our log readers
      // treat as a truncated record.
      *result = Slice(result->data(), result->size() / 2);
    }
    return s;
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  const std::string fname_;
  std::unique_ptr<SequentialFile> base_;
  ErrorInjectionEnv* env_;
};

class ErrorInjectionRandomAccessFile final : public RandomAccessFile {
 public:
  ErrorInjectionRandomAccessFile(std::string fname, std::unique_ptr<RandomAccessFile> base,
                                 ErrorInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    env_->MaybeDelay(FaultOp::kRead, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kRead, fname_, &fault)) {
      return fault;
    }
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok() && result->size() > 1 &&
        env_->MaybeInject(FaultOp::kShortRead, fname_, &fault)) {
      *result = Slice(result->data(), result->size() / 2);
    }
    return s;
  }

 private:
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
  ErrorInjectionEnv* env_;
};

class ErrorInjectionWritableFile final : public WritableFile {
 public:
  ErrorInjectionWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                             ErrorInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    env_->MaybeDelay(FaultOp::kAppend, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kAppend, fname_, &fault)) {
      return fault;
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    env_->MaybeDelay(FaultOp::kSync, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kSync, fname_, &fault)) {
      return fault;
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
  ErrorInjectionEnv* env_;
};

class ErrorInjectionRandomWritableFile final : public RandomWritableFile {
 public:
  ErrorInjectionRandomWritableFile(std::string fname,
                                   std::unique_ptr<RandomWritableFile> base,
                                   ErrorInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Write(uint64_t offset, const Slice& data) override {
    env_->MaybeDelay(FaultOp::kRandomWrite, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kRandomWrite, fname_, &fault)) {
      return fault;
    }
    return base_->Write(offset, data);
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    env_->MaybeDelay(FaultOp::kRead, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kRead, fname_, &fault)) {
      return fault;
    }
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok() && result->size() > 1 &&
        env_->MaybeInject(FaultOp::kShortRead, fname_, &fault)) {
      *result = Slice(result->data(), result->size() / 2);
    }
    return s;
  }

  Status Sync() override {
    env_->MaybeDelay(FaultOp::kRandomSync, fname_);
    Status fault;
    if (env_->MaybeInject(FaultOp::kRandomSync, fname_, &fault)) {
      return fault;
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

  Status Close() override { return base_->Close(); }

 private:
  const std::string fname_;
  std::unique_ptr<RandomWritableFile> base_;
  ErrorInjectionEnv* env_;
};

// ---------------------------------------------------------------------------
// ErrorInjectionEnv
// ---------------------------------------------------------------------------

void ErrorInjectionEnv::FailNext(FaultOp op, int count, bool transient) {
  MutexLock lock(&mu_);
  OpState& st = ops_[static_cast<int>(op)];
  st.fail_next = count;
  st.transient = transient;
}

void ErrorInjectionEnv::SetFailureOdds(FaultOp op, int one_in, bool transient) {
  MutexLock lock(&mu_);
  OpState& st = ops_[static_cast<int>(op)];
  st.one_in = one_in;
  st.transient = transient;
}

void ErrorInjectionEnv::SetSeed(uint32_t seed) {
  MutexLock lock(&mu_);
  rng_ = Random(seed);
}

void ErrorInjectionEnv::SetOpLatency(FaultOp op, int micros) {
  MutexLock lock(&mu_);
  ops_[static_cast<int>(op)].latency_us = micros;
}

void ErrorInjectionEnv::SetPathFilter(const std::string& substring) {
  MutexLock lock(&mu_);
  path_filter_ = substring;
}

void ErrorInjectionEnv::DisableAll() {
  MutexLock lock(&mu_);
  for (OpState& st : ops_) {
    st.fail_next = 0;
    st.one_in = 0;
    st.latency_us = 0;
  }
}

uint64_t ErrorInjectionEnv::injected_faults() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const OpState& st : ops_) {
    total += st.injected;
  }
  return total;
}

uint64_t ErrorInjectionEnv::injected_faults(FaultOp op) const {
  MutexLock lock(&mu_);
  return ops_[static_cast<int>(op)].injected;
}

void ErrorInjectionEnv::MaybeDelay(FaultOp op, const std::string& fname) {
  int micros;
  {
    MutexLock lock(&mu_);
    const OpState& st = ops_[static_cast<int>(op)];
    if (st.latency_us <= 0) {
      return;
    }
    if (!path_filter_.empty() && fname.find(path_filter_) == std::string::npos) {
      return;
    }
    micros = st.latency_us;
  }
  target()->SleepForMicroseconds(micros);
}

bool ErrorInjectionEnv::MaybeInject(FaultOp op, const std::string& fname, Status* out) {
  bool transient;
  {
    MutexLock lock(&mu_);
    OpState& st = ops_[static_cast<int>(op)];
    if (st.fail_next == 0 && st.one_in == 0) {
      return false;
    }
    if (!path_filter_.empty() && fname.find(path_filter_) == std::string::npos) {
      return false;
    }
    if (st.fail_next > 0) {
      st.fail_next--;
    } else if (!rng_.OneIn(st.one_in)) {
      return false;
    }
    st.injected++;
    transient = st.transient;
  }
  IoStats::Instance().RecordInjectedFault();
  TraceEmitAux(TraceEventType::kFault, static_cast<uint64_t>(op),
               transient ? 1 : 0);
  if (op == FaultOp::kShortRead) {
    // Not a failure: the caller truncates the successful read.
    *out = Status::OK();
    return true;
  }
  std::string msg = std::string("injected ") + FaultOpName(op) + " fault";
  *out = transient ? Status::TransientIOError(msg, fname) : Status::IOError(msg, fname);
  return true;
}

// ---------------------------------------------------------------------------
// Env overrides
// ---------------------------------------------------------------------------

Status ErrorInjectionEnv::NewSequentialFile(const std::string& f,
                                            std::unique_ptr<SequentialFile>* r) {
  std::unique_ptr<SequentialFile> base;
  Status s = target()->NewSequentialFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  *r = std::make_unique<ErrorInjectionSequentialFile>(f, std::move(base), this);
  return Status::OK();
}

Status ErrorInjectionEnv::NewRandomAccessFile(const std::string& f,
                                              std::unique_ptr<RandomAccessFile>* r) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = target()->NewRandomAccessFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  *r = std::make_unique<ErrorInjectionRandomAccessFile>(f, std::move(base), this);
  return Status::OK();
}

Status ErrorInjectionEnv::NewWritableFile(const std::string& f,
                                          std::unique_ptr<WritableFile>* r) {
  Status fault;
  if (MaybeInject(FaultOp::kNewWritableFile, f, &fault)) {
    return fault;
  }
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewWritableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  *r = std::make_unique<ErrorInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status ErrorInjectionEnv::NewAppendableFile(const std::string& f,
                                            std::unique_ptr<WritableFile>* r) {
  Status fault;
  if (MaybeInject(FaultOp::kNewWritableFile, f, &fault)) {
    return fault;
  }
  std::unique_ptr<WritableFile> base;
  Status s = target()->NewAppendableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  *r = std::make_unique<ErrorInjectionWritableFile>(f, std::move(base), this);
  return Status::OK();
}

Status ErrorInjectionEnv::NewRandomWritableFile(const std::string& f,
                                                std::unique_ptr<RandomWritableFile>* r) {
  Status fault;
  if (MaybeInject(FaultOp::kNewWritableFile, f, &fault)) {
    return fault;
  }
  std::unique_ptr<RandomWritableFile> base;
  Status s = target()->NewRandomWritableFile(f, &base);
  if (!s.ok()) {
    return s;
  }
  *r = std::make_unique<ErrorInjectionRandomWritableFile>(f, std::move(base), this);
  return Status::OK();
}

}  // namespace p2kvs
