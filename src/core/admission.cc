#include "src/core/admission.h"

#include <cstdio>

namespace p2kvs {

std::unique_ptr<AdmissionController> MakeCoDelAdmissionController(
    const AdmissionConfig& config, size_t queue_capacity, int worker_id) {
  (void)worker_id;  // the default controller keeps no per-worker identity
  return std::unique_ptr<AdmissionController>(
      new CoDelAdmissionController(config, queue_capacity));
}

Status MakeShedStatus(int worker_id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "partition %d overloaded", worker_id);
  return Status::Busy(buf, "request shed by admission control");
}

}  // namespace p2kvs
