#include "src/core/worker.h"

#include <vector>

#include "src/util/clock.h"
#include "src/util/thread_util.h"

namespace p2kvs {

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kDegraded:
      return "degraded";
    case WorkerHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

Worker::Worker(const Config& config, std::unique_ptr<KVStore> store)
    : config_(config),
      store_(std::move(store)),
      caps_(store_->caps()),
      queue_(config.queue_capacity) {
  BatchPolicyFactory factory =
      config_.batch_policy_factory ? config_.batch_policy_factory : MakeBatchPolicyFromCaps;
  batch_policy_ = factory(caps_, config_.enable_obm, config_.max_batch_size);
  group_.reserve(static_cast<size_t>(config_.max_batch_size));
}

Worker::~Worker() { Stop(); }

void Worker::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Worker::Stop() {
  queue_.Close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Worker::Submit(Request* request) {
  if (!queue_.Push(request)) {
    request->Complete(Status::Aborted("p2kvs worker stopped"));
  }
}

void Worker::Run() {
  if (config_.pin_to_cpu) {
    PinThreadToCpu(config_.id);
  }
  SetThreadName("p2kvs-worker-" + std::to_string(config_.id));

  // The worker never waits for more requests to show up — batching is purely
  // opportunistic over what is already queued (paper §4.3). How much of the
  // queue is taken per iteration is the BatchPolicy's decision.
  while (true) {
    std::optional<Request*> item = queue_.Pop();
    if (!item.has_value()) {
      // Queue closed and drained: release any snapshots of transactions
      // whose EndTxn never arrived (e.g. shutdown mid-transaction).
      for (auto& [gsn, snapshot] : txn_snapshots_) {
        store_->ReleaseSnapshot(snapshot);
      }
      txn_snapshots_.clear();
      return;
    }
    Request* r = *item;

    switch (r->type) {
      case RequestType::kScan:
        ExecuteScan(r);
        continue;
      case RequestType::kRange:
        ExecuteRange(r);
        continue;
      case RequestType::kMultiGet:
        ExecuteMultiGet(r);
        continue;
      case RequestType::kBarrier:
        // FIFO queue: everything submitted before the barrier has executed.
        r->Complete(Status::OK());
        continue;
      case RequestType::kEndTxn:
        ExecuteSingle(r);
        continue;
      default:
        break;
    }
    if (IsWriteType(r->type) && RejectIfUnhealthy(r)) {
      continue;
    }
    group_.clear();
    batch_policy_->Collect(r, &queue_, &group_);
    if (group_.size() <= 1) {
      ExecuteSingle(r);
    } else if (IsWriteType(r->type)) {
      ExecuteWriteGroup(group_);
    } else {
      ExecuteReadGroup(group_);
    }
  }
}

bool Worker::RejectIfUnhealthy(Request* request) {
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  MaybeAutoResume();
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  degraded_rejects_.fetch_add(1, std::memory_order_relaxed);
  request->Complete(Status::IOError(
      std::string("partition ") + std::to_string(config_.id) + " " +
          WorkerHealthName(health()) + " (read-only)",
      "write rejected"));
  return true;
}

void Worker::MaybeDegrade(const Status& s) {
  // Only storage errors degrade: a transient status here already survived
  // every retry, so the partition is treated as unhealthy either way.
  // Semantic outcomes (NotFound / InvalidArgument / NotSupported) do not.
  if (!s.IsIOError() && !s.IsCorruption()) {
    return;
  }
  int expected = static_cast<int>(WorkerHealth::kHealthy);
  health_.compare_exchange_strong(expected, static_cast<int>(WorkerHealth::kDegraded),
                                  std::memory_order_acq_rel);
}

void Worker::MaybeAutoResume() {
  if (health() != WorkerHealth::kDegraded) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(resume_mu_);
    uint64_t now = NowMicros();
    if (now - last_resume_attempt_us_ <
        static_cast<uint64_t>(config_.auto_resume_interval_us)) {
      return;
    }
  }
  TryResume();
}

Status Worker::TryResume() {
  std::lock_guard<std::mutex> lock(resume_mu_);
  if (health() == WorkerHealth::kHealthy) {
    return Status::OK();
  }
  last_resume_attempt_us_ = NowMicros();
  resume_attempts_.fetch_add(1, std::memory_order_relaxed);
  Status s = store_->Resume();
  if (s.ok()) {
    consecutive_resume_failures_ = 0;
    health_.store(static_cast<int>(WorkerHealth::kHealthy), std::memory_order_release);
  } else {
    consecutive_resume_failures_++;
    if (health() == WorkerHealth::kDegraded &&
        consecutive_resume_failures_ >= config_.max_auto_resume_failures) {
      health_.store(static_cast<int>(WorkerHealth::kFailed), std::memory_order_release);
    }
  }
  return s;
}

void Worker::ExecuteWriteGroup(const std::vector<Request*>& group) {
  WriteBatch merged;
  for (Request* r : group) {
    switch (r->type) {
      case RequestType::kPut:
        merged.Put(r->key, r->value);
        break;
      case RequestType::kDelete:
        merged.Delete(r->key);
        break;
      case RequestType::kWriteBatch:
        merged.Append(*r->batch);
        break;
      default:
        break;
    }
  }

  Status s = RunWithRetry(config_.env, config_.retry,
                          [&] { return store_->Write(&merged, KvWriteOptions()); });
  MaybeDegrade(s);
  write_batches_.fetch_add(1, std::memory_order_relaxed);
  writes_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  // Every member of the merged group observes the group's outcome — on
  // failure none of the folded writes may be silently acknowledged.
  for (Request* r : group) {
    r->Complete(s);
  }
}

Status Worker::ReadOne(const Slice& key, std::string* value) {
  if (!txn_snapshots_.empty()) {
    // A cross-instance transaction is in flight: read its pre-image so its
    // uncommitted writes stay invisible (read committed).
    return store_->GetAtSnapshot(key, value, txn_snapshots_.front().second);
  }
  return RunWithRetry(config_.env, config_.retry,
                      [&] { return store_->Get(key, value); });
}

void Worker::ExecuteReadGroup(const std::vector<Request*>& group) {
  if (!txn_snapshots_.empty()) {
    // Snapshot reads bypass the multiget fast path; correctness first.
    for (Request* r : group) {
      r->Complete(ReadOne(r->key, r->get_out));
    }
    return;
  }

  std::vector<Slice> keys;
  keys.reserve(group.size());
  for (Request* r : group) {
    keys.emplace_back(r->key);
  }
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < group.size(); i++) {
    if (statuses[i].ok() && group[i]->get_out != nullptr) {
      *group[i]->get_out = std::move(values[i]);
    }
    group[i]->Complete(statuses[i]);
  }
}

void Worker::ExecuteMultiGet(Request* r) {
  // A pre-merged per-partition slice of a client-side MultiGet: per-key
  // outcomes scatter into the caller's arrays by original index; the group
  // request itself always completes OK (key-level errors are per-key).
  const std::vector<uint32_t>& index = r->mget_index;
  if (!txn_snapshots_.empty()) {
    for (uint32_t idx : index) {
      (*r->mget_statuses)[idx] = ReadOne((*r->mget_keys)[idx], &(*r->mget_values)[idx]);
    }
    r->Complete(Status::OK());
    return;
  }
  std::vector<Slice> keys;
  keys.reserve(index.size());
  for (uint32_t idx : index) {
    keys.push_back((*r->mget_keys)[idx]);
  }
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(index.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < index.size(); i++) {
    (*r->mget_statuses)[index[i]] = statuses[i];
    if (statuses[i].ok()) {
      (*r->mget_values)[index[i]] = std::move(values[i]);
    }
  }
  r->Complete(Status::OK());
}

void Worker::ExecuteSingle(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  Status s;
  switch (r->type) {
    case RequestType::kPut:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Put(r->key, r->value, KvWriteOptions()); });
      MaybeDegrade(s);
      break;
    case RequestType::kDelete:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Delete(r->key, KvWriteOptions()); });
      MaybeDegrade(s);
      break;
    case RequestType::kGet:
      s = ReadOne(r->key, r->get_out);
      break;
    case RequestType::kWriteBatch: {
      if (config_.txn_read_committed && r->gsn != 0 && caps_.snapshots) {
        // Pre-image snapshot: readers see the state before this sub-batch
        // until the whole transaction commits (paper §4.5).
        txn_snapshots_.emplace_back(r->gsn, store_->GetSnapshot());
      }
      KvWriteOptions options;
      options.gsn = r->gsn;
      // Sub-batches of a transaction sync their WAL so commit-ordering
      // survives a crash.
      options.sync = (r->gsn != 0);
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Write(r->batch, options); });
      MaybeDegrade(s);
      break;
    }
    case RequestType::kEndTxn: {
      for (auto it = txn_snapshots_.begin(); it != txn_snapshots_.end(); ++it) {
        if (it->first == r->gsn) {
          store_->ReleaseSnapshot(it->second);
          txn_snapshots_.erase(it);
          break;
        }
      }
      break;
    }
    default:
      s = Status::InvalidArgument("unexpected request type");
      break;
  }
  r->Complete(s);
}

void Worker::ExecuteScan(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && r->scan_out->size() < r->scan_count) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  r->Complete(iter->status());
}

void Worker::ExecuteRange(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  const Slice end(r->value);
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && (end.empty() || iter->key().compare(end) < 0)) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  r->Complete(iter->status());
}

}  // namespace p2kvs
