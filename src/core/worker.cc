#include "src/core/worker.h"

#include <vector>

#include "src/io/io_stats.h"
#include "src/util/clock.h"
#include "src/util/perf_context.h"
#include "src/util/thread_util.h"

namespace p2kvs {

namespace {
// Set for the lifetime of Worker::Run on the worker's own thread. Read by
// P2KVS::GetStats()/WaitIdle() to refuse a blocking drain issued from a
// worker thread (which could never serve its own drain request).
thread_local const Worker* t_current_worker = nullptr;
}  // namespace

const Worker* Worker::CurrentThreadWorker() { return t_current_worker; }

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kDegraded:
      return "degraded";
    case WorkerHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

Worker::Worker(const Config& config, std::unique_ptr<KVStore> store)
    : config_(config),
      store_(std::move(store)),
      caps_(store_->caps()),
      queue_(config.queue_capacity),
      retry_budget_(config.retry_budget_per_sec, config.retry_budget_burst),
      breaker_(config.breaker_failure_threshold,
               static_cast<uint64_t>(config.breaker_window_ms) * 1000000ull) {
  BatchPolicyFactory factory =
      config_.batch_policy_factory ? config_.batch_policy_factory : MakeBatchPolicyFromCaps;
  batch_policy_ = factory(caps_, config_.enable_obm, config_.max_batch_size);
  group_.reserve(static_cast<size_t>(config_.max_batch_size));

  if (config_.admission.enabled) {
    AdmissionControllerFactory admission_factory = config_.admission_factory
                                                       ? config_.admission_factory
                                                       : MakeCoDelAdmissionController;
    admission_ = admission_factory(config_.admission, config_.queue_capacity, config_.id);
  }

  if (config_.tracer != nullptr) {
    trace_ring_ = config_.tracer->ring(config_.id);
  }

  if (config_.hot_key_sketch_k > 0) {
    sketch_ = std::make_unique<obs::SpaceSavingSketch>(config_.hot_key_sketch_k);
  }

  if (config_.listener != nullptr || trace_ring_ != nullptr) {
    // Forward engine events to the framework listener with this partition's
    // id attached, and append them to the trace ring (flush/compaction/stall
    // fire from engine background threads; the ring is multi-writer).
    // Installed before Start(), so the hooks are immutable once any thread
    // can observe them.
    EventListener* listener = config_.listener;
    TraceRing* ring = trace_ring_;
    const int id = config_.id;
    EngineEventHooks hooks;
    hooks.on_flush_completed = [listener, ring, id](const FlushEventInfo& info) {
      if (ring != nullptr) {
        TraceAppend(ring, TraceEventType::kFlush, static_cast<uint32_t>(id), 0,
                    info.bytes_written, 0);
      }
      if (listener != nullptr) listener->OnFlushCompleted(id, info);
    };
    hooks.on_compaction_completed = [listener, ring, id](const CompactionEventInfo& info) {
      if (ring != nullptr) {
        TraceAppend(ring, TraceEventType::kCompaction, static_cast<uint32_t>(id), 0,
                    info.bytes_written, static_cast<uint64_t>(info.level));
      }
      if (listener != nullptr) listener->OnCompactionCompleted(id, info);
    };
    hooks.on_write_stalled = [listener, ring, id](const StallEventInfo& info) {
      if (ring != nullptr) {
        TraceAppend(ring, TraceEventType::kStall, static_cast<uint32_t>(id), 0,
                    info.stall_micros, 0);
      }
      if (listener != nullptr) listener->OnWriteStalled(id, info);
    };
    store_->InstallEventHooks(hooks);
  }
}

Worker::~Worker() { Stop(); }

void Worker::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Worker::Stop() {
  queue_.Close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Worker::Submit(Request* request) {
  SubmitInternal(request, PushOverflow::kPark);
}

void Worker::SubmitControl(Request* request) {
  SubmitInternal(request, PushOverflow::kBypass);
}

void Worker::SubmitShedOnFull(Request* request) {
  SubmitInternal(request, PushOverflow::kFail);
}

void Worker::SubmitInternal(Request* request, PushOverflow overflow) {
  const bool control = IsControlType(request->type);
  if (!control) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.enable_stats || admission_ != nullptr) {
    // Published by the queue push's release store; read only by the worker.
    // The admission controller needs the queue-wait signal even when the
    // stats spine is off, so its one submit-side clock read stays.
    request->submit_nanos = NowNanos();
  }
  if (trace_ring_ != nullptr && !control) {
    // Sampling decision for data requests (control requests carry no trace:
    // their lifecycle is not a pipeline hop). The enqueue event — like
    // submit_nanos — must be emitted before the push: once the request is
    // in the queue the worker may free it. Sampling runs before admission so
    // a shed request still leaves a kShed event in the flight recorder.
    const uint64_t id = config_.tracer->SampleSubmit();
    if (id != 0) {
      request->trace_id = id;
      EmitTrace(TraceEventType::kEnqueue, id, static_cast<uint64_t>(request->type), 0);
    }
  }
  if (admission_ != nullptr && !control &&
      request->priority == RequestPriority::kNormal &&
      !admission_->Admit(queue_.Size())) {
    ShedAtSubmit(request);
    return;
  }
  const PushOutcome outcome = queue_.PushWithOverflow(request, overflow);
  if (outcome == PushOutcome::kFull) {
    // Capacity refusal on the non-parking async path: same Busy status and
    // same `shed` accounting door as an admission refusal, so SelfCheck's
    // completed + shed + expired <= submitted invariant keeps holding.
    ShedAtSubmit(request);
    return;
  }
  if (outcome == PushOutcome::kClosed) {
    const Status s = Status::Aborted("p2kvs worker stopped");
    if (trace_ring_ != nullptr && request->trace_id != 0) {
      // Closed queue: the request never reaches the worker, so close its
      // trace here. Not counted as a sampled completion — the lifecycle
      // invariant (>= enqueue+dequeue+complete events per completion) only
      // covers requests a worker actually processed.
      EmitTrace(TraceEventType::kComplete, request->trace_id, TraceStatusCode(s), 0);
    }
    if (!control) {
      // Release: pairs with the snapshot's acquire load so the abort is
      // never observed without its submitted_ increment.
      completed_.fetch_add(1, std::memory_order_release);
    }
    request->Complete(s);
  }
}

void Worker::ShedAtSubmit(Request* request) {
  const Status s = MakeShedStatus(config_.id);
  if (request->type == RequestType::kMultiGet && request->mget_statuses != nullptr) {
    // Capacity-shed fan-out slice (only SubmitShedOnFull can get here with a
    // kCritical slice): every key it carries reports Busy, mirroring the
    // partial-expiry scatter in ExpireRequest.
    for (uint32_t idx : request->mget_index) {
      (*request->mget_statuses)[idx] = s;
    }
  }
  if (trace_ring_ != nullptr && request->trace_id != 0) {
    // Shed before the queue: close the trace chain here, like the
    // closed-queue abort above (not a sampled completion — no worker
    // processed it).
    EmitTrace(TraceEventType::kShed, request->trace_id, queue_.Size(), 0);
    EmitTrace(TraceEventType::kComplete, request->trace_id, TraceStatusCode(s), 0);
  }
  // Release: see the closed-queue abort path.
  shed_.fetch_add(1, std::memory_order_release);
  NoteShed();
  request->Complete(s);
}

void Worker::CountFanoutShed() {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Release: see ShedAtSubmit.
  shed_.fetch_add(1, std::memory_order_release);
  NoteShed();
}

void Worker::NoteShed() {
  if (config_.tracer == nullptr || config_.admission.shed_storm_threshold == 0) {
    return;
  }
  const uint64_t now = NowNanos();
  const uint64_t window_nanos =
      static_cast<uint64_t>(config_.admission.shed_storm_window_ms) * 1000000ull;
  uint64_t start = storm_window_start_.load(std::memory_order_relaxed);
  if (start == 0 || now - start > window_nanos) {
    // Rotate the window. Racing submitters may lose the CAS and count into
    // the winner's fresh window instead — the trigger is deliberately
    // approximate, a real storm crosses the threshold either way.
    if (storm_window_start_.compare_exchange_strong(start, now,
                                                    std::memory_order_relaxed)) {
      storm_count_.store(0, std::memory_order_relaxed);
    }
  }
  const uint32_t in_window = storm_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (in_window >= config_.admission.shed_storm_threshold &&
      !storm_dumped_.exchange(true, std::memory_order_relaxed)) {
    config_.tracer->DumpFlightRecorder(
        std::string("partition ") + std::to_string(config_.id) + " shed storm: " +
        std::to_string(in_window) + " sheds within " +
        std::to_string(config_.admission.shed_storm_window_ms) + "ms");
  }
}

void Worker::FinishRequest(Request* r, const Status& s, uint64_t batch_id) {
  EmitTraceComplete(r, s, batch_id);
  // Worker thread only; the kStats snapshot runs on this same thread, so
  // relaxed is enough for the accounting invariant.
  completed_.fetch_add(1, std::memory_order_relaxed);
  r->Complete(s);
}

void Worker::ExpireRequest(Request* r, bool at_dequeue) {
  (at_dequeue ? expired_dequeue_ : expired_execute_)
      .fetch_add(1, std::memory_order_relaxed);
  if (config_.enable_stats && r->submit_nanos != 0 && stage_ts_ > r->submit_nanos) {
    // The request completed a full lifetime (submit -> expiry), and its queue
    // wait is already in the stage sums. stage_ts_ holds the dequeue (or
    // batch-build) clock read, so this costs no extra one.
    recorder_.RecordExpired(stage_ts_ - r->submit_nanos);
  }
  const Status s = Status::DeadlineExceeded(
      std::string("partition ") + std::to_string(config_.id),
      at_dequeue ? "deadline passed while queued" : "deadline passed before execute");
  if (r->type == RequestType::kMultiGet && r->mget_statuses != nullptr) {
    // Partial fan-out expiry: every key this slice carries reports the
    // deadline, while sibling slices on other partitions complete on their
    // own merits — the join Completion still counts down exactly once per
    // slice.
    for (uint32_t idx : r->mget_index) {
      (*r->mget_statuses)[idx] = s;
    }
  }
  if (trace_ring_ != nullptr && r->trace_id != 0) {
    EmitTrace(TraceEventType::kExpired, r->trace_id, at_dequeue ? 0 : 1, 0);
  }
  EmitTraceComplete(r, s, 0);
  r->Complete(s);
}

void Worker::Run() {
  t_current_worker = this;
  if (config_.pin_to_cpu) {
    PinThreadToCpu(config_.id);
  }
  SetThreadName("p2kvs-worker-" + std::to_string(config_.id));

  // The worker never waits for more requests to show up — batching is purely
  // opportunistic over what is already queued (paper §4.3). How much of the
  // queue is taken per iteration is the BatchPolicy's decision.
  while (true) {
    std::optional<Request*> item = queue_.Pop();
    if (!item.has_value()) {
      // Queue closed and drained: release any snapshots of transactions
      // whose EndTxn never arrived (e.g. shutdown mid-transaction).
      for (auto& [gsn, snapshot] : txn_snapshots_) {
        store_->ReleaseSnapshot(snapshot);
      }
      txn_snapshots_.clear();
      return;
    }
    Request* r = *item;

    // Control requests and fast rejects: not dispatches, never timed or
    // counted (keeps the batch-size/e2e invariants exact).
    if (r->type == RequestType::kBarrier) {
      // FIFO queue: everything submitted before the barrier has executed.
      r->Complete(Status::OK());
      continue;
    }
    if (r->type == RequestType::kStats) {
      HandleStatsRequest(r);
      continue;
    }
    if (IsWriteType(r->type) && RejectIfUnhealthy(r)) {
      continue;
    }

    const bool rec = config_.enable_stats;
    const uint64_t t_submit = r->submit_nanos;
    uint64_t now = 0;
    if (rec || admission_ != nullptr) {
      stage_ts_ = NowNanos();
      now = stage_ts_;
      const uint64_t wait = (t_submit != 0 && now > t_submit) ? now - t_submit : 0;
      if (rec && wait != 0) {
        recorder_.RecordQueueWait(wait);
      }
      if (admission_ != nullptr) {
        // Feed the control law from the worker side: the submit-side probe
        // then stays clock-free.
        admission_->RecordQueueWait(wait, now);
      }
    }
    // Deadline checkpoint 1 (at dequeue): dead work is completed here, never
    // dispatched — not timed, not counted as a dispatch.
    if (r->deadline_nanos != 0) {
      if (now == 0) now = NowNanos();
      if (now >= r->deadline_nanos) {
        ExpireRequest(r, /*at_dequeue=*/true);
        continue;
      }
    }

    if (trace_ring_ != nullptr && r->trace_id != 0) {
      EmitTrace(TraceEventType::kDequeue, r->trace_id, static_cast<uint64_t>(r->type), 0);
    }

    size_t dispatch_size = 1;
    switch (r->type) {
      case RequestType::kScan:
        ExecuteScan(r);
        break;
      case RequestType::kRange:
        ExecuteRange(r);
        break;
      case RequestType::kMultiGet:
        dispatch_size = r->mget_index.size();
        ExecuteMultiGet(r);
        break;
      case RequestType::kEndTxn:
        ExecuteSingle(r);
        break;
      default: {
        group_.clear();
        batch_policy_->Collect(r, &queue_, &group_);
        if (rec) {
          const uint64_t t_built = NowNanos();
          recorder_.RecordBatchBuild(t_built - stage_ts_);
          stage_ts_ = t_built;
          now = t_built;
        }
        // Deadline checkpoint 2 (pre-execute): drop expired members before
        // the engine burns time on them. The head already passed checkpoint
        // 1, so its expiry here counts pre-execute; collected members were
        // never checked at pop, so theirs count at-dequeue.
        bool any_deadline = false;
        for (Request* member : group_) {
          if (member->deadline_nanos != 0) {
            any_deadline = true;
            break;
          }
        }
        if (any_deadline) {
          if (now == 0) now = NowNanos();
          size_t live = 0;
          for (Request* member : group_) {
            if (now >= member->deadline_nanos && member->deadline_nanos != 0) {
              ExpireRequest(member, /*at_dequeue=*/member != r);
            } else {
              group_[live++] = member;
            }
          }
          group_.resize(live);
        }
        if (group_.empty()) {
          dispatch_size = 0;  // the whole group expired: nothing dispatched
          break;
        }
        dispatch_size = group_.size();
        if (group_.size() == 1) {
          ExecuteSingle(group_[0]);
        } else if (IsWriteType(group_[0]->type)) {
          ExecuteWriteGroup(group_);
        } else {
          ExecuteReadGroup(group_);
        }
        break;
      }
    }
    if (rec && dispatch_size != 0) {
      // r (and the group members) may already be destroyed — only timestamps
      // are touched here. stage_ts_ holds the Execute helper's last clock
      // read, so closing out the dispatch costs no extra one.
      recorder_.RecordDispatch(
          dispatch_size,
          (t_submit != 0 && stage_ts_ > t_submit) ? stage_ts_ - t_submit : 0);
    }
  }
}

void Worker::HandleStatsRequest(Request* r) {
  if (r->stats_out != nullptr) {
    *r->stats_out = SnapshotStats();
  }
  r->Complete(Status::OK());
}

WorkerStatsSnapshot Worker::SnapshotStats() {
  WorkerStatsSnapshot snap;
  snap.worker_id = config_.id;
  recorder_.FillSnapshot(&snap);
  snap.write_batches = write_batches_.load(std::memory_order_relaxed);
  snap.writes_batched = writes_batched_.load(std::memory_order_relaxed);
  snap.read_batches = read_batches_.load(std::memory_order_relaxed);
  snap.reads_batched = reads_batched_.load(std::memory_order_relaxed);
  snap.singles = singles_.load(std::memory_order_relaxed);
  // This thread's engine-side write breakdown and foreground IO: reading the
  // thread-locals from the owning thread is what makes this race-free.
  snap.engine = GetPerfContext();
  const ThreadIoCounters& io = GetThreadIoCounters();
  snap.fg_bytes_written = io.bytes_written;
  snap.fg_bytes_read = io.bytes_read;
  snap.fg_write_ops = io.write_ops;
  snap.fg_read_ops = io.read_ops;
  snap.health_state = static_cast<int>(health());
  snap.health_transitions = health_transitions_.load(std::memory_order_relaxed);
  snap.degraded_rejects = degraded_rejects_.load(std::memory_order_relaxed);
  snap.resume_attempts = resume_attempts_.load(std::memory_order_relaxed);
  snap.queue_depth = queue_.Size();
  // Overload accounting. Acquire on the submit-thread doors (shed, aborts)
  // pairs with their release increments, so a door observed here always
  // comes with its submitted_ increment — keeping the SelfCheck inequality
  // completed + shed + expired <= submitted true at every instant. The
  // acquire loads run before the submitted_ load in program order, and
  // acquire semantics keep it there.
  snap.completed = completed_.load(std::memory_order_acquire);
  snap.shed = shed_.load(std::memory_order_acquire);
  snap.expired_at_dequeue = expired_dequeue_.load(std::memory_order_relaxed);
  snap.expired_pre_execute = expired_execute_.load(std::memory_order_relaxed);
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.breaker_trips = breaker_.trips();
  snap.retries_denied = retry_budget_.denied();
  snap.admission_overloaded = admission_ != nullptr && admission_->overloaded();
  if (sketch_ != nullptr) {
    // Same single-writer copy as the recorder: the sketch is only ever
    // touched from this thread, so the snapshot races with nothing.
    sketch_->FillSnapshot(&snap.hot_keys, config_.id);
  }
  return snap;
}

namespace {
// Feeds a WriteBatch's keys into the sketch (kWriteBatch requests carry the
// keys only in serialized form).
class SketchBatchHandler : public WriteBatch::Handler {
 public:
  explicit SketchBatchHandler(obs::SpaceSavingSketch* sketch) : sketch_(sketch) {}
  void Put(const Slice& key, const Slice&) override {
    sketch_->RecordKey(key.data(), key.size());
  }
  void Delete(const Slice& key) override { sketch_->RecordKey(key.data(), key.size()); }

 private:
  obs::SpaceSavingSketch* sketch_;
};
}  // namespace

void Worker::SketchRequestKeys(const Request* r) {
  switch (r->type) {
    case RequestType::kPut:
    case RequestType::kDelete:
    case RequestType::kGet:
      sketch_->RecordKey(r->key);
      break;
    case RequestType::kWriteBatch: {
      SketchBatchHandler handler(sketch_.get());
      r->batch->Iterate(&handler).IgnoreError();
      break;
    }
    case RequestType::kMultiGet:
      for (uint32_t idx : r->mget_index) {
        const Slice& key = (*r->mget_keys)[idx];
        sketch_->RecordKey(key.data(), key.size());
      }
      break;
    default:
      // Scan/Range sweep ranges, not points; control types carry no key.
      break;
  }
}

bool Worker::RejectIfUnhealthy(Request* request) {
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  MaybeAutoResume();
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  degraded_rejects_.fetch_add(1, std::memory_order_relaxed);
  const Status s = Status::IOError(
      std::string("partition ") + std::to_string(config_.id) + " " +
          WorkerHealthName(health()) + " (read-only)",
      "write rejected");
  if (trace_ring_ != nullptr && request->trace_id != 0) {
    // Fast rejects bypass the dispatch path, so close the chain here.
    EmitTrace(TraceEventType::kDequeue, request->trace_id,
              static_cast<uint64_t>(request->type), 0);
  }
  FinishRequest(request, s, 0);
  return true;
}

void Worker::MaybeDegrade(const Status& s, uint64_t trace_id) {
  if (s.IsDeadlineExceeded()) {
    // A deadline that lapsed mid-retry says nothing about device health:
    // neither a breaker failure nor a success. Leave the window untouched.
    return;
  }
  // Only storage errors degrade: a transient status here already survived
  // every retry, so the partition is treated as unhealthy either way.
  // Semantic outcomes (NotFound / InvalidArgument / NotSupported) do not.
  if (!s.IsIOError() && !s.IsCorruption()) {
    if (breaker_.enabled()) {
      breaker_.OnSuccess();  // failures must be *sustained* to trip
    }
    return;
  }
  if (trace_ring_ != nullptr) {
    // Always-trace-on-error: a request that was never sampled still gets an
    // identity the moment it hits a storage error, so the flight recorder
    // can name it.
    const uint64_t id = trace_id != 0 ? trace_id : config_.tracer->NewTraceId();
    EmitTrace(TraceEventType::kError, id, TraceStatusCode(s), s.IsTransient() ? 1 : 0);
  }
  // Circuit breaker (when enabled): isolated IO errors are absorbed — the
  // caller already sees the error status, but the partition stays healthy
  // until failures are sustained within the breaker window. Corruption is
  // never absorbed (data integrity beats availability). With the breaker
  // disabled OnFailure always says "trip": the legacy first-error degrade.
  if (!s.IsCorruption() && !breaker_.OnFailure(NowNanos())) {
    return;
  }
  int expected = static_cast<int>(WorkerHealth::kHealthy);
  if (health_.compare_exchange_strong(expected, static_cast<int>(WorkerHealth::kDegraded),
                                      std::memory_order_acq_rel)) {
    NotifyHealthTransition(WorkerHealth::kHealthy, WorkerHealth::kDegraded);
    if (config_.tracer != nullptr) {
      // The hard error is in the ring (kError above, plus the failing
      // request's earlier hops); capture it before traffic overwrites it.
      const char* how = breaker_.enabled()
                            ? " degraded by circuit breaker on sustained errors: "
                            : " degraded on hard error: ";
      config_.tracer->DumpFlightRecorder(std::string("partition ") +
                                         std::to_string(config_.id) + how +
                                         s.ToString());
    }
  }
}

void Worker::NotifyHealthTransition(WorkerHealth from, WorkerHealth to) {
  health_transitions_.fetch_add(1, std::memory_order_relaxed);
  if (config_.listener != nullptr) {
    config_.listener->OnHealthTransition(config_.id, from, to);
  }
}

void Worker::MaybeAutoResume() {
  if (health() != WorkerHealth::kDegraded) {
    return;
  }
  {
    MutexLock lock(&resume_mu_);
    uint64_t now = NowMicros();
    if (now - last_resume_attempt_us_ <
        static_cast<uint64_t>(config_.auto_resume_interval_us)) {
      return;
    }
  }
  // Periodic background attempt: the outcome lands in health()/resume
  // counters, and a sticky failure escalates to kFailed inside TryResume.
  TryResume().IgnoreError();
}

Status Worker::TryResume() {
  MutexLock lock(&resume_mu_);
  if (health() == WorkerHealth::kHealthy) {
    return Status::OK();
  }
  last_resume_attempt_us_ = NowMicros();
  resume_attempts_.fetch_add(1, std::memory_order_relaxed);
  Status s = store_->Resume();
  if (s.ok()) {
    const WorkerHealth was = health();
    consecutive_resume_failures_ = 0;
    health_.store(static_cast<int>(WorkerHealth::kHealthy), std::memory_order_release);
    NotifyHealthTransition(was, WorkerHealth::kHealthy);
  } else {
    consecutive_resume_failures_++;
    if (health() == WorkerHealth::kDegraded &&
        consecutive_resume_failures_ >= config_.max_auto_resume_failures) {
      health_.store(static_cast<int>(WorkerHealth::kFailed), std::memory_order_release);
      NotifyHealthTransition(WorkerHealth::kDegraded, WorkerHealth::kFailed);
      if (config_.tracer != nullptr) {
        config_.tracer->DumpFlightRecorder(
            std::string("partition ") + std::to_string(config_.id) +
            " marked failed after " + std::to_string(consecutive_resume_failures_) +
            " resume failures");
      }
    }
  }
  return s;
}

void Worker::ExecuteWriteGroup(const std::vector<Request*>& group) {
  if (sketch_ != nullptr) {
    for (const Request* r : group) {
      SketchRequestKeys(r);
    }
  }
  WriteBatch merged;
  // The earliest deadline in the group governs the merged write's retries:
  // the group shares one engine call and one fate, exactly like errors.
  uint64_t deadline = 0;
  for (Request* r : group) {
    if (r->deadline_nanos != 0 && (deadline == 0 || r->deadline_nanos < deadline)) {
      deadline = r->deadline_nanos;
    }
    switch (r->type) {
      case RequestType::kPut:
        merged.Put(r->key, r->value);
        break;
      case RequestType::kDelete:
        merged.Delete(r->key);
        break;
      case RequestType::kWriteBatch:
        merged.Append(*r->batch);
        break;
      default:
        break;
    }
  }

  // Trace the merge: group[0] is the head (its dequeue was emitted by the
  // loop); the collected members get their dequeue here, then every traced
  // member records which batch it rode in and how big that batch was.
  uint64_t batch_id = 0;
  uint64_t lead_trace = 0;
  if (trace_ring_ != nullptr) {
    for (Request* r : group) {
      if (r->trace_id != 0 && lead_trace == 0) lead_trace = r->trace_id;
    }
    if (lead_trace != 0) {
      batch_id = NextBatchId();
      for (size_t i = 1; i < group.size(); i++) {
        if (group[i]->trace_id != 0) {
          EmitTrace(TraceEventType::kDequeue, group[i]->trace_id,
                    static_cast<uint64_t>(group[i]->type), 0);
        }
      }
      for (Request* r : group) {
        if (r->trace_id != 0) {
          EmitTrace(TraceEventType::kObmMerge, r->trace_id, batch_id, group.size());
        }
      }
      EmitTrace(TraceEventType::kExecuteBegin, lead_trace, batch_id, group.size());
    }
  }

  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;  // end of batch-build (valid iff rec)
  const RetryGovernor governor{retry_budget_.enabled() ? &retry_budget_ : nullptr,
                               deadline};
  Status s;
  if (lead_trace != 0) {
    // Engine internals (WAL append, memtable insert, retries, faults) emit
    // through this scope, stamped with the group's batch id.
    TraceContext ctx;
    ctx.ring = trace_ring_;
    ctx.trace_id = lead_trace;
    ctx.batch_id = batch_id;
    ctx.worker_id = static_cast<uint32_t>(config_.id);
    ScopedTraceContext scope(ctx);
    s = RunWithRetry(config_.env, config_.retry,
                     [&] { return store_->Write(&merged, KvWriteOptions()); }, governor);
  } else {
    s = RunWithRetry(config_.env, config_.retry,
                     [&] { return store_->Write(&merged, KvWriteOptions()); }, governor);
  }
  MaybeDegrade(s, lead_trace);
  if (lead_trace != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, lead_trace, batch_id, TraceStatusCode(s));
  }
  const uint64_t t1 = rec ? NowNanos() : 0;
  write_batches_.fetch_add(1, std::memory_order_relaxed);
  writes_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  // Every member of the merged group observes the group's outcome — on
  // failure none of the folded writes may be silently acknowledged.
  for (Request* r : group) {
    FinishRequest(r, s, batch_id);
  }
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

Status Worker::ReadOne(const Slice& key, std::string* value, uint64_t deadline_nanos) {
  if (!txn_snapshots_.empty()) {
    // A cross-instance transaction is in flight: read its pre-image so its
    // uncommitted writes stay invisible (read committed).
    return store_->GetAtSnapshot(key, value, txn_snapshots_.front().second);
  }
  const RetryGovernor governor{retry_budget_.enabled() ? &retry_budget_ : nullptr,
                               deadline_nanos};
  return RunWithRetry(config_.env, config_.retry,
                      [&] { return store_->Get(key, value); }, governor);
}

void Worker::ExecuteReadGroup(const std::vector<Request*>& group) {
  if (sketch_ != nullptr) {
    for (const Request* r : group) {
      SketchRequestKeys(r);
    }
  }
  const bool rec = config_.enable_stats;

  // Same merge-tracing shape as ExecuteWriteGroup: member dequeues (the head
  // got its own in the loop), one kObmMerge per traced member, one execute
  // span for the dispatch.
  uint64_t batch_id = 0;
  uint64_t lead_trace = 0;
  if (trace_ring_ != nullptr) {
    for (Request* r : group) {
      if (r->trace_id != 0 && lead_trace == 0) lead_trace = r->trace_id;
    }
    if (lead_trace != 0) {
      batch_id = NextBatchId();
      for (size_t i = 1; i < group.size(); i++) {
        if (group[i]->trace_id != 0) {
          EmitTrace(TraceEventType::kDequeue, group[i]->trace_id,
                    static_cast<uint64_t>(group[i]->type), 0);
        }
      }
      for (Request* r : group) {
        if (r->trace_id != 0) {
          EmitTrace(TraceEventType::kObmMerge, r->trace_id, batch_id, group.size());
        }
      }
      EmitTrace(TraceEventType::kExecuteBegin, lead_trace, batch_id, group.size());
    }
  }

  if (!txn_snapshots_.empty()) {
    // Snapshot reads bypass the multiget fast path; correctness first. Still
    // one collected read group — counted as such so the batch-size histogram
    // keeps matching the dispatch counters.
    const uint64_t t0 = stage_ts_;
    read_batches_.fetch_add(1, std::memory_order_relaxed);
    reads_batched_.fetch_add(group.size(), std::memory_order_relaxed);
    for (Request* r : group) {
      const Status rs = ReadOne(r->key, r->get_out, r->deadline_nanos);
      FinishRequest(r, rs, batch_id);
    }
    if (lead_trace != 0) {
      EmitTrace(TraceEventType::kExecuteEnd, lead_trace, batch_id, 0);
    }
    if (rec) {
      const uint64_t t1 = NowNanos();
      recorder_.RecordExecute(t1 - t0);
      stage_ts_ = t1;
    }
    return;
  }

  std::vector<Slice> keys;
  keys.reserve(group.size());
  for (Request* r : group) {
    keys.emplace_back(r->key);
  }
  const uint64_t t0 = stage_ts_;
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  if (lead_trace != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, lead_trace, batch_id, 0);
  }
  const uint64_t t1 = rec ? NowNanos() : 0;
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < group.size(); i++) {
    if (statuses[i].ok() && group[i]->get_out != nullptr) {
      *group[i]->get_out = std::move(values[i]);
    }
    FinishRequest(group[i], statuses[i], batch_id);
  }
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

void Worker::ExecuteMultiGet(Request* r) {
  // A pre-merged per-partition slice of a client-side MultiGet: per-key
  // outcomes scatter into the caller's arrays by original index; the group
  // request itself always completes OK (key-level errors are per-key).
  const std::vector<uint32_t>& index = r->mget_index;
  if (sketch_ != nullptr) {
    SketchRequestKeys(r);
  }
  const bool rec = config_.enable_stats;
  // Pre-merged fan-out groups are one dispatch: a single execute span sized
  // by the number of keys the partition serves.
  const uint64_t trace_id = trace_ring_ != nullptr ? r->trace_id : 0;
  uint64_t batch_id = 0;
  if (trace_id != 0) {
    batch_id = NextBatchId();
    EmitTrace(TraceEventType::kExecuteBegin, trace_id, batch_id, index.size());
  }
  if (!txn_snapshots_.empty()) {
    // Counted as one read group either way (see ExecuteReadGroup).
    const uint64_t t0 = stage_ts_;
    read_batches_.fetch_add(1, std::memory_order_relaxed);
    reads_batched_.fetch_add(index.size(), std::memory_order_relaxed);
    for (uint32_t idx : index) {
      (*r->mget_statuses)[idx] =
          ReadOne((*r->mget_keys)[idx], &(*r->mget_values)[idx], r->deadline_nanos);
    }
    if (rec) {
      const uint64_t t1 = NowNanos();
      recorder_.RecordExecute(t1 - t0);
      stage_ts_ = t1;
    }
    if (trace_id != 0) {
      EmitTrace(TraceEventType::kExecuteEnd, trace_id, batch_id, 0);
    }
    FinishRequest(r, Status::OK(), batch_id);
    return;
  }
  std::vector<Slice> keys;
  keys.reserve(index.size());
  for (uint32_t idx : index) {
    keys.push_back((*r->mget_keys)[idx]);
  }
  const uint64_t t0 = stage_ts_;
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  const uint64_t t1 = rec ? NowNanos() : 0;
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(index.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < index.size(); i++) {
    (*r->mget_statuses)[index[i]] = statuses[i];
    if (statuses[i].ok()) {
      (*r->mget_values)[index[i]] = std::move(values[i]);
    }
  }
  if (rec) {
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  if (trace_id != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, trace_id, batch_id, 0);
  }
  FinishRequest(r, Status::OK(), batch_id);
}

void Worker::ExecuteSingle(Request* r) {
  if (sketch_ != nullptr) {
    SketchRequestKeys(r);
  }
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;  // end of previous stage (valid iff rec)
  const uint64_t trace_id = trace_ring_ != nullptr ? r->trace_id : 0;
  uint64_t batch_id = 0;
  Status s;
  if (trace_id != 0) {
    // Unbatched dispatches get a batch id too, so WAL-append / slot-write
    // events inside the engine stay linked to this execute span.
    batch_id = NextBatchId();
    EmitTrace(TraceEventType::kExecuteBegin, trace_id, batch_id, 1);
    TraceContext ctx;
    ctx.ring = trace_ring_;
    ctx.trace_id = trace_id;
    ctx.batch_id = batch_id;
    ctx.worker_id = static_cast<uint32_t>(config_.id);
    ScopedTraceContext scope(ctx);
    s = ExecuteSingleOp(r);
  } else {
    s = ExecuteSingleOp(r);
  }
  if (trace_id != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, trace_id, batch_id, TraceStatusCode(s));
  }
  const uint64_t t1 = rec ? NowNanos() : 0;
  FinishRequest(r, s, batch_id);
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

Status Worker::ExecuteSingleOp(Request* r) {
  const RetryGovernor governor{retry_budget_.enabled() ? &retry_budget_ : nullptr,
                               r->deadline_nanos};
  Status s;
  switch (r->type) {
    case RequestType::kPut:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Put(r->key, r->value, KvWriteOptions()); },
                       governor);
      MaybeDegrade(s, r->trace_id);
      break;
    case RequestType::kDelete:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Delete(r->key, KvWriteOptions()); },
                       governor);
      MaybeDegrade(s, r->trace_id);
      break;
    case RequestType::kGet:
      s = ReadOne(r->key, r->get_out, r->deadline_nanos);
      break;
    case RequestType::kWriteBatch: {
      if (config_.txn_read_committed && r->gsn != 0 && caps_.snapshots) {
        // Pre-image snapshot: readers see the state before this sub-batch
        // until the whole transaction commits (paper §4.5).
        txn_snapshots_.emplace_back(r->gsn, store_->GetSnapshot());
      }
      KvWriteOptions options;
      options.gsn = r->gsn;
      // Sub-batches of a transaction sync their WAL so commit-ordering
      // survives a crash.
      options.sync = (r->gsn != 0);
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Write(r->batch, options); }, governor);
      MaybeDegrade(s, r->trace_id);
      break;
    }
    case RequestType::kEndTxn: {
      for (auto it = txn_snapshots_.begin(); it != txn_snapshots_.end(); ++it) {
        if (it->first == r->gsn) {
          store_->ReleaseSnapshot(it->second);
          txn_snapshots_.erase(it);
          break;
        }
      }
      break;
    }
    default:
      s = Status::InvalidArgument("unexpected request type");
      break;
  }
  return s;
}

void Worker::ExecuteScan(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;
  const uint64_t trace_id = trace_ring_ != nullptr ? r->trace_id : 0;
  uint64_t batch_id = 0;
  if (trace_id != 0) {
    batch_id = NextBatchId();
    EmitTrace(TraceEventType::kExecuteBegin, trace_id, batch_id, 1);
  }
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && r->scan_out->size() < r->scan_count) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  if (rec) {
    const uint64_t t1 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  const Status s = iter->status();
  if (trace_id != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, trace_id, batch_id, TraceStatusCode(s));
  }
  FinishRequest(r, s, batch_id);
}

void Worker::ExecuteRange(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;
  const uint64_t trace_id = trace_ring_ != nullptr ? r->trace_id : 0;
  uint64_t batch_id = 0;
  if (trace_id != 0) {
    batch_id = NextBatchId();
    EmitTrace(TraceEventType::kExecuteBegin, trace_id, batch_id, 1);
  }
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  const Slice end(r->value);
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && (end.empty() || iter->key().compare(end) < 0)) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  if (rec) {
    const uint64_t t1 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  const Status s = iter->status();
  if (trace_id != 0) {
    EmitTrace(TraceEventType::kExecuteEnd, trace_id, batch_id, TraceStatusCode(s));
  }
  FinishRequest(r, s, batch_id);
}

}  // namespace p2kvs
