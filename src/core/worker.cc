#include "src/core/worker.h"

#include <vector>

#include "src/io/io_stats.h"
#include "src/util/clock.h"
#include "src/util/perf_context.h"
#include "src/util/thread_util.h"

namespace p2kvs {

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kDegraded:
      return "degraded";
    case WorkerHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

Worker::Worker(const Config& config, std::unique_ptr<KVStore> store)
    : config_(config),
      store_(std::move(store)),
      caps_(store_->caps()),
      queue_(config.queue_capacity) {
  BatchPolicyFactory factory =
      config_.batch_policy_factory ? config_.batch_policy_factory : MakeBatchPolicyFromCaps;
  batch_policy_ = factory(caps_, config_.enable_obm, config_.max_batch_size);
  group_.reserve(static_cast<size_t>(config_.max_batch_size));

  if (config_.listener != nullptr) {
    // Forward engine events to the framework listener with this partition's
    // id attached. Installed before Start(), so the hooks are immutable once
    // any thread can observe them.
    EventListener* listener = config_.listener;
    const int id = config_.id;
    EngineEventHooks hooks;
    hooks.on_flush_completed = [listener, id](const FlushEventInfo& info) {
      listener->OnFlushCompleted(id, info);
    };
    hooks.on_compaction_completed = [listener, id](const CompactionEventInfo& info) {
      listener->OnCompactionCompleted(id, info);
    };
    hooks.on_write_stalled = [listener, id](const StallEventInfo& info) {
      listener->OnWriteStalled(id, info);
    };
    store_->InstallEventHooks(hooks);
  }
}

Worker::~Worker() { Stop(); }

void Worker::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Worker::Stop() {
  queue_.Close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Worker::Submit(Request* request) {
  if (config_.enable_stats) {
    // Published by the queue push's release store; read only by the worker.
    request->submit_nanos = NowNanos();
  }
  if (!queue_.Push(request)) {
    request->Complete(Status::Aborted("p2kvs worker stopped"));
  }
}

void Worker::Run() {
  if (config_.pin_to_cpu) {
    PinThreadToCpu(config_.id);
  }
  SetThreadName("p2kvs-worker-" + std::to_string(config_.id));

  // The worker never waits for more requests to show up — batching is purely
  // opportunistic over what is already queued (paper §4.3). How much of the
  // queue is taken per iteration is the BatchPolicy's decision.
  while (true) {
    std::optional<Request*> item = queue_.Pop();
    if (!item.has_value()) {
      // Queue closed and drained: release any snapshots of transactions
      // whose EndTxn never arrived (e.g. shutdown mid-transaction).
      for (auto& [gsn, snapshot] : txn_snapshots_) {
        store_->ReleaseSnapshot(snapshot);
      }
      txn_snapshots_.clear();
      return;
    }
    Request* r = *item;

    // Control requests and fast rejects: not dispatches, never timed or
    // counted (keeps the batch-size/e2e invariants exact).
    if (r->type == RequestType::kBarrier) {
      // FIFO queue: everything submitted before the barrier has executed.
      r->Complete(Status::OK());
      continue;
    }
    if (r->type == RequestType::kStats) {
      HandleStatsRequest(r);
      continue;
    }
    if (IsWriteType(r->type) && RejectIfUnhealthy(r)) {
      continue;
    }

    const bool rec = config_.enable_stats;
    const uint64_t t_submit = r->submit_nanos;
    if (rec) {
      stage_ts_ = NowNanos();
      if (t_submit != 0 && stage_ts_ > t_submit) {
        recorder_.RecordQueueWait(stage_ts_ - t_submit);
      }
    }

    size_t dispatch_size = 1;
    switch (r->type) {
      case RequestType::kScan:
        ExecuteScan(r);
        break;
      case RequestType::kRange:
        ExecuteRange(r);
        break;
      case RequestType::kMultiGet:
        dispatch_size = r->mget_index.size();
        ExecuteMultiGet(r);
        break;
      case RequestType::kEndTxn:
        ExecuteSingle(r);
        break;
      default: {
        group_.clear();
        batch_policy_->Collect(r, &queue_, &group_);
        if (rec) {
          const uint64_t t_built = NowNanos();
          recorder_.RecordBatchBuild(t_built - stage_ts_);
          stage_ts_ = t_built;
        }
        dispatch_size = group_.size() > 1 ? group_.size() : 1;
        if (group_.size() <= 1) {
          ExecuteSingle(r);
        } else if (IsWriteType(r->type)) {
          ExecuteWriteGroup(group_);
        } else {
          ExecuteReadGroup(group_);
        }
        break;
      }
    }
    if (rec) {
      // r (and the group members) may already be destroyed — only timestamps
      // are touched here. stage_ts_ holds the Execute helper's last clock
      // read, so closing out the dispatch costs no extra one.
      recorder_.RecordDispatch(
          dispatch_size,
          (t_submit != 0 && stage_ts_ > t_submit) ? stage_ts_ - t_submit : 0);
    }
  }
}

void Worker::HandleStatsRequest(Request* r) {
  if (r->stats_out != nullptr) {
    *r->stats_out = SnapshotStats();
  }
  r->Complete(Status::OK());
}

WorkerStatsSnapshot Worker::SnapshotStats() {
  WorkerStatsSnapshot snap;
  snap.worker_id = config_.id;
  recorder_.FillSnapshot(&snap);
  snap.write_batches = write_batches_.load(std::memory_order_relaxed);
  snap.writes_batched = writes_batched_.load(std::memory_order_relaxed);
  snap.read_batches = read_batches_.load(std::memory_order_relaxed);
  snap.reads_batched = reads_batched_.load(std::memory_order_relaxed);
  snap.singles = singles_.load(std::memory_order_relaxed);
  // This thread's engine-side write breakdown and foreground IO: reading the
  // thread-locals from the owning thread is what makes this race-free.
  snap.engine = GetPerfContext();
  const ThreadIoCounters& io = GetThreadIoCounters();
  snap.fg_bytes_written = io.bytes_written;
  snap.fg_bytes_read = io.bytes_read;
  snap.fg_write_ops = io.write_ops;
  snap.fg_read_ops = io.read_ops;
  snap.health_state = static_cast<int>(health());
  snap.health_transitions = health_transitions_.load(std::memory_order_relaxed);
  snap.degraded_rejects = degraded_rejects_.load(std::memory_order_relaxed);
  snap.resume_attempts = resume_attempts_.load(std::memory_order_relaxed);
  snap.queue_depth = queue_.Size();
  return snap;
}

bool Worker::RejectIfUnhealthy(Request* request) {
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  MaybeAutoResume();
  if (health() == WorkerHealth::kHealthy) {
    return false;
  }
  degraded_rejects_.fetch_add(1, std::memory_order_relaxed);
  request->Complete(Status::IOError(
      std::string("partition ") + std::to_string(config_.id) + " " +
          WorkerHealthName(health()) + " (read-only)",
      "write rejected"));
  return true;
}

void Worker::MaybeDegrade(const Status& s) {
  // Only storage errors degrade: a transient status here already survived
  // every retry, so the partition is treated as unhealthy either way.
  // Semantic outcomes (NotFound / InvalidArgument / NotSupported) do not.
  if (!s.IsIOError() && !s.IsCorruption()) {
    return;
  }
  int expected = static_cast<int>(WorkerHealth::kHealthy);
  if (health_.compare_exchange_strong(expected, static_cast<int>(WorkerHealth::kDegraded),
                                      std::memory_order_acq_rel)) {
    NotifyHealthTransition(WorkerHealth::kHealthy, WorkerHealth::kDegraded);
  }
}

void Worker::NotifyHealthTransition(WorkerHealth from, WorkerHealth to) {
  health_transitions_.fetch_add(1, std::memory_order_relaxed);
  if (config_.listener != nullptr) {
    config_.listener->OnHealthTransition(config_.id, from, to);
  }
}

void Worker::MaybeAutoResume() {
  if (health() != WorkerHealth::kDegraded) {
    return;
  }
  {
    MutexLock lock(&resume_mu_);
    uint64_t now = NowMicros();
    if (now - last_resume_attempt_us_ <
        static_cast<uint64_t>(config_.auto_resume_interval_us)) {
      return;
    }
  }
  TryResume();
}

Status Worker::TryResume() {
  MutexLock lock(&resume_mu_);
  if (health() == WorkerHealth::kHealthy) {
    return Status::OK();
  }
  last_resume_attempt_us_ = NowMicros();
  resume_attempts_.fetch_add(1, std::memory_order_relaxed);
  Status s = store_->Resume();
  if (s.ok()) {
    const WorkerHealth was = health();
    consecutive_resume_failures_ = 0;
    health_.store(static_cast<int>(WorkerHealth::kHealthy), std::memory_order_release);
    NotifyHealthTransition(was, WorkerHealth::kHealthy);
  } else {
    consecutive_resume_failures_++;
    if (health() == WorkerHealth::kDegraded &&
        consecutive_resume_failures_ >= config_.max_auto_resume_failures) {
      health_.store(static_cast<int>(WorkerHealth::kFailed), std::memory_order_release);
      NotifyHealthTransition(WorkerHealth::kDegraded, WorkerHealth::kFailed);
    }
  }
  return s;
}

void Worker::ExecuteWriteGroup(const std::vector<Request*>& group) {
  WriteBatch merged;
  for (Request* r : group) {
    switch (r->type) {
      case RequestType::kPut:
        merged.Put(r->key, r->value);
        break;
      case RequestType::kDelete:
        merged.Delete(r->key);
        break;
      case RequestType::kWriteBatch:
        merged.Append(*r->batch);
        break;
      default:
        break;
    }
  }

  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;  // end of batch-build (valid iff rec)
  Status s = RunWithRetry(config_.env, config_.retry,
                          [&] { return store_->Write(&merged, KvWriteOptions()); });
  MaybeDegrade(s);
  const uint64_t t1 = rec ? NowNanos() : 0;
  write_batches_.fetch_add(1, std::memory_order_relaxed);
  writes_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  // Every member of the merged group observes the group's outcome — on
  // failure none of the folded writes may be silently acknowledged.
  for (Request* r : group) {
    r->Complete(s);
  }
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

Status Worker::ReadOne(const Slice& key, std::string* value) {
  if (!txn_snapshots_.empty()) {
    // A cross-instance transaction is in flight: read its pre-image so its
    // uncommitted writes stay invisible (read committed).
    return store_->GetAtSnapshot(key, value, txn_snapshots_.front().second);
  }
  return RunWithRetry(config_.env, config_.retry,
                      [&] { return store_->Get(key, value); });
}

void Worker::ExecuteReadGroup(const std::vector<Request*>& group) {
  const bool rec = config_.enable_stats;
  if (!txn_snapshots_.empty()) {
    // Snapshot reads bypass the multiget fast path; correctness first. Still
    // one collected read group — counted as such so the batch-size histogram
    // keeps matching the dispatch counters.
    const uint64_t t0 = stage_ts_;
    read_batches_.fetch_add(1, std::memory_order_relaxed);
    reads_batched_.fetch_add(group.size(), std::memory_order_relaxed);
    for (Request* r : group) {
      r->Complete(ReadOne(r->key, r->get_out));
    }
    if (rec) {
      const uint64_t t1 = NowNanos();
      recorder_.RecordExecute(t1 - t0);
      stage_ts_ = t1;
    }
    return;
  }

  std::vector<Slice> keys;
  keys.reserve(group.size());
  for (Request* r : group) {
    keys.emplace_back(r->key);
  }
  const uint64_t t0 = stage_ts_;
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  const uint64_t t1 = rec ? NowNanos() : 0;
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(group.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < group.size(); i++) {
    if (statuses[i].ok() && group[i]->get_out != nullptr) {
      *group[i]->get_out = std::move(values[i]);
    }
    group[i]->Complete(statuses[i]);
  }
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

void Worker::ExecuteMultiGet(Request* r) {
  // A pre-merged per-partition slice of a client-side MultiGet: per-key
  // outcomes scatter into the caller's arrays by original index; the group
  // request itself always completes OK (key-level errors are per-key).
  const std::vector<uint32_t>& index = r->mget_index;
  const bool rec = config_.enable_stats;
  if (!txn_snapshots_.empty()) {
    // Counted as one read group either way (see ExecuteReadGroup).
    const uint64_t t0 = stage_ts_;
    read_batches_.fetch_add(1, std::memory_order_relaxed);
    reads_batched_.fetch_add(index.size(), std::memory_order_relaxed);
    for (uint32_t idx : index) {
      (*r->mget_statuses)[idx] = ReadOne((*r->mget_keys)[idx], &(*r->mget_values)[idx]);
    }
    if (rec) {
      const uint64_t t1 = NowNanos();
      recorder_.RecordExecute(t1 - t0);
      stage_ts_ = t1;
    }
    r->Complete(Status::OK());
    return;
  }
  std::vector<Slice> keys;
  keys.reserve(index.size());
  for (uint32_t idx : index) {
    keys.push_back((*r->mget_keys)[idx]);
  }
  const uint64_t t0 = stage_ts_;
  std::vector<std::string> values;
  std::vector<Status> statuses = store_->MultiGet(keys, &values);
  const uint64_t t1 = rec ? NowNanos() : 0;
  read_batches_.fetch_add(1, std::memory_order_relaxed);
  reads_batched_.fetch_add(index.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < index.size(); i++) {
    (*r->mget_statuses)[index[i]] = statuses[i];
    if (statuses[i].ok()) {
      (*r->mget_values)[index[i]] = std::move(values[i]);
    }
  }
  if (rec) {
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  r->Complete(Status::OK());
}

void Worker::ExecuteSingle(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;  // end of previous stage (valid iff rec)
  Status s;
  switch (r->type) {
    case RequestType::kPut:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Put(r->key, r->value, KvWriteOptions()); });
      MaybeDegrade(s);
      break;
    case RequestType::kDelete:
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Delete(r->key, KvWriteOptions()); });
      MaybeDegrade(s);
      break;
    case RequestType::kGet:
      s = ReadOne(r->key, r->get_out);
      break;
    case RequestType::kWriteBatch: {
      if (config_.txn_read_committed && r->gsn != 0 && caps_.snapshots) {
        // Pre-image snapshot: readers see the state before this sub-batch
        // until the whole transaction commits (paper §4.5).
        txn_snapshots_.emplace_back(r->gsn, store_->GetSnapshot());
      }
      KvWriteOptions options;
      options.gsn = r->gsn;
      // Sub-batches of a transaction sync their WAL so commit-ordering
      // survives a crash.
      options.sync = (r->gsn != 0);
      s = RunWithRetry(config_.env, config_.retry,
                       [&] { return store_->Write(r->batch, options); });
      MaybeDegrade(s);
      break;
    }
    case RequestType::kEndTxn: {
      for (auto it = txn_snapshots_.begin(); it != txn_snapshots_.end(); ++it) {
        if (it->first == r->gsn) {
          store_->ReleaseSnapshot(it->second);
          txn_snapshots_.erase(it);
          break;
        }
      }
      break;
    }
    default:
      s = Status::InvalidArgument("unexpected request type");
      break;
  }
  const uint64_t t1 = rec ? NowNanos() : 0;
  r->Complete(s);
  if (rec) {
    const uint64_t t2 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    recorder_.RecordComplete(t2 - t1);
    stage_ts_ = t2;
  }
}

void Worker::ExecuteScan(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && r->scan_out->size() < r->scan_count) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  if (rec) {
    const uint64_t t1 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  r->Complete(iter->status());
}

void Worker::ExecuteRange(Request* r) {
  singles_.fetch_add(1, std::memory_order_relaxed);
  const bool rec = config_.enable_stats;
  const uint64_t t0 = stage_ts_;
  r->scan_out->clear();
  std::unique_ptr<Iterator> iter(store_->NewIterator());
  const Slice end(r->value);
  if (r->key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(r->key);
  }
  while (iter->Valid() && (end.empty() || iter->key().compare(end) < 0)) {
    r->scan_out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  if (rec) {
    const uint64_t t1 = NowNanos();
    recorder_.RecordExecute(t1 - t0);
    stage_ts_ = t1;
  }
  r->Complete(iter->status());
}

}  // namespace p2kvs
