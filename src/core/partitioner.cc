#include "src/core/partitioner.h"

#include <algorithm>

#include "src/util/hash.h"

namespace p2kvs {

Partitioner MakeHashPartitioner() {
  return [](const Slice& key, int num_workers) {
    return static_cast<int>(Hash(key.data(), key.size(), 0x70324b56u) %
                            static_cast<uint32_t>(num_workers));
  };
}

Partitioner MakeRangePartitioner(std::vector<std::string> boundaries) {
  // Boundaries must be sorted; enforce here so misuse fails loudly early.
  std::vector<std::string> sorted = std::move(boundaries);
  std::sort(sorted.begin(), sorted.end());
  return [sorted](const Slice& key, int num_workers) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), key.ToStringView(),
                               [](const std::string_view& k, const std::string& b) {
                                 return k < std::string_view(b);
                               });
    int index = static_cast<int>(it - sorted.begin());
    return std::min(index, num_workers - 1);
  };
}

Partitioner MakeTwoChoiceHashPartitioner() {
  return [](const Slice& key, int num_workers) {
    uint32_t h1 = Hash(key.data(), key.size(), 0x70324b56u);
    uint32_t h2 = Hash(key.data(), key.size(), 0x1b873593u);
    uint32_t pick = Hash(key.data(), key.size(), 0xcc9e2d51u);
    uint32_t a = h1 % static_cast<uint32_t>(num_workers);
    uint32_t b = h2 % static_cast<uint32_t>(num_workers);
    return static_cast<int>((pick & 1) ? a : b);
  };
}

}  // namespace p2kvs
