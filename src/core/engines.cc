#include "src/core/engines.h"

namespace p2kvs {

Status KVStore::Write(WriteBatch* batch, const KvWriteOptions& options) {
  // Default: unroll into individual operations.
  struct Unroller : public WriteBatch::Handler {
    KVStore* store;
    KvWriteOptions options;
    Status status;

    void Put(const Slice& key, const Slice& value) override {
      if (status.ok()) {
        status = store->Put(key, value, options);
      }
    }
    void Delete(const Slice& key) override {
      if (status.ok()) {
        status = store->Delete(key, options);
      }
    }
  };
  Unroller unroller;
  unroller.store = this;
  unroller.options = options;
  Status s = batch->Iterate(&unroller);
  return s.ok() ? unroller.status : s;
}

std::vector<Status> KVStore::MultiGet(const std::vector<Slice>& keys,
                                      std::vector<std::string>* values) {
  std::vector<Status> statuses(keys.size());
  values->assign(keys.size(), std::string());
  for (size_t i = 0; i < keys.size(); i++) {
    statuses[i] = Get(keys[i], &(*values)[i]);
  }
  return statuses;
}

namespace {

class LsmEngine final : public KVStore {
 public:
  explicit LsmEngine(std::unique_ptr<DB> db, bool multi_get)
      : db_(std::move(db)), multi_get_(multi_get) {}

  EngineCaps caps() const override {
    EngineCaps caps;
    caps.batch_write = true;
    caps.multi_get = multi_get_;
    caps.gsn_wal = true;
    caps.snapshots = true;
    return caps;
  }

  Status Put(const Slice& key, const Slice& value, const KvWriteOptions& options) override {
    return db_->Put(ToWriteOptions(options), key, value);
  }

  Status Delete(const Slice& key, const KvWriteOptions& options) override {
    return db_->Delete(ToWriteOptions(options), key);
  }

  Status Write(WriteBatch* batch, const KvWriteOptions& options) override {
    return db_->Write(ToWriteOptions(options), batch);
  }

  Status Get(const Slice& key, std::string* value) override {
    return db_->Get(ReadOptions(), key, value);
  }

  std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override {
    if (multi_get_) {
      return db_->MultiGet(ReadOptions(), keys, values);
    }
    return KVStore::MultiGet(keys, values);
  }

  Iterator* NewIterator() override { return db_->NewIterator(ReadOptions()); }

  const Snapshot* GetSnapshot() override { return db_->GetSnapshot(); }
  void ReleaseSnapshot(const Snapshot* snapshot) override { db_->ReleaseSnapshot(snapshot); }
  Status GetAtSnapshot(const Slice& key, std::string* value,
                       const Snapshot* snapshot) override {
    ReadOptions ro;
    ro.snapshot = snapshot;
    return db_->Get(ro, key, value);
  }

  void InstallEventHooks(const EngineEventHooks& hooks) override { db_->SetEventHooks(hooks); }

  Status Flush() override { return db_->FlushMemTable(); }
  Status Resume() override { return db_->Resume(); }
  void WaitIdle() override { db_->WaitForBackgroundWork(); }
  size_t ApproximateMemoryUsage() const override { return db_->ApproximateMemoryUsage(); }

  DB* db() { return db_.get(); }

 private:
  static WriteOptions ToWriteOptions(const KvWriteOptions& options) {
    WriteOptions wo;
    wo.sync = options.sync;
    wo.gsn = options.gsn;
    return wo;
  }

  std::unique_ptr<DB> db_;
  const bool multi_get_;
};

class BTreeEngine final : public KVStore {
 public:
  explicit BTreeEngine(std::unique_ptr<BTreeStore> store) : store_(std::move(store)) {}

  EngineCaps caps() const override {
    return EngineCaps{/*batch_write=*/false, /*multi_get=*/false, /*gsn_wal=*/false};
  }

  Status Put(const Slice& key, const Slice& value, const KvWriteOptions& /*options*/) override {
    return store_->Put(key, value);
  }

  Status Delete(const Slice& key, const KvWriteOptions& /*options*/) override {
    return store_->Delete(key);
  }

  Status Get(const Slice& key, std::string* value) override { return store_->Get(key, value); }

  Iterator* NewIterator() override { return store_->NewIterator(); }

  Status Flush() override { return store_->Checkpoint(); }
  size_t ApproximateMemoryUsage() const override { return store_->ApproximateMemoryUsage(); }

 private:
  std::unique_ptr<BTreeStore> store_;
};

}  // namespace

EngineFactory MakeLsmEngineFactory(const Options& options) {
  const bool multi_get = options.compat_mode == CompatMode::kRocksDB;
  return [options, multi_get](const std::string& path,
                              std::function<bool(uint64_t)> recovery_filter,
                              std::unique_ptr<KVStore>* out) -> Status {
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, path, &db, std::move(recovery_filter));
    if (!s.ok()) {
      return s;
    }
    *out = std::make_unique<LsmEngine>(std::move(db), multi_get);
    return Status::OK();
  };
}

EngineFactory MakeRocksLiteFactory(Options options) {
  options.compat_mode = CompatMode::kRocksDB;
  options.compaction_style = CompactionStyle::kLeveled;
  return MakeLsmEngineFactory(options);
}

EngineFactory MakeLevelLiteFactory(Options options) {
  options.compat_mode = CompatMode::kLevelDB;
  options.compaction_style = CompactionStyle::kLeveled;
  return MakeLsmEngineFactory(options);
}

EngineFactory MakePebblesLiteFactory(Options options) {
  options.compat_mode = CompatMode::kLevelDB;
  options.compaction_style = CompactionStyle::kTiered;
  return MakeLsmEngineFactory(options);
}

EngineFactory MakeWTLiteFactory(BTreeOptions options) {
  return [options](const std::string& path, std::function<bool(uint64_t)> /*recovery_filter*/,
                   std::unique_ptr<KVStore>* out) -> Status {
    std::unique_ptr<BTreeStore> store;
    Status s = BTreeStore::Open(options, path, &store);
    if (!s.ok()) {
      return s;
    }
    *out = std::make_unique<BTreeEngine>(std::move(store));
    return Status::OK();
  };
}

}  // namespace p2kvs
