// KVStore: the engine abstraction p2KVS schedules over. The framework treats
// each instance as a black box (paper §4.6): it only needs open / put / get /
// delete / iterate, and *optionally* batch-write (RocksDB WriteBatch,
// LevelDB batch) and batch-read (RocksDB multiget). Capabilities tell the
// opportunistic batching mechanism which fast paths exist.

#ifndef P2KVS_SRC_CORE_KV_STORE_H_
#define P2KVS_SRC_CORE_KV_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/lsm/options.h"
#include "src/lsm/write_batch.h"
#include "src/util/iterator.h"
#include "src/util/status.h"

namespace p2kvs {

struct KvWriteOptions {
  bool sync = false;
  // Global sequence number for cross-instance transactions (0 = none).
  uint64_t gsn = 0;
};

struct EngineCaps {
  bool batch_write = false;  // has an atomic WriteBatch-style operation
  bool multi_get = false;    // has a batched point-lookup fast path
  bool gsn_wal = false;      // WAL records can carry a GSN for txn rollback
  bool snapshots = false;    // supports point-in-time read snapshots
};

class KVStore {
 public:
  KVStore() = default;
  virtual ~KVStore() = default;

  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  virtual EngineCaps caps() const = 0;

  virtual Status Put(const Slice& key, const Slice& value, const KvWriteOptions& options) = 0;
  virtual Status Delete(const Slice& key, const KvWriteOptions& options) = 0;

  // Atomically applies `batch`. The default unrolls it into individual
  // operations — correct but non-atomic, for engines without batch support
  // (e.g. WTLite); the OBM only merges writes when caps().batch_write.
  virtual Status Write(WriteBatch* batch, const KvWriteOptions& options);

  virtual Status Get(const Slice& key, std::string* value) = 0;

  // Batched lookups; the default loops over Get.
  virtual std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                                       std::vector<std::string>* values);

  // Iterator over user keys in bytewise order. Caller owns the result; the
  // store must outlive it.
  virtual Iterator* NewIterator() = 0;

  // --- Optional snapshot surface (caps().snapshots). Used by p2KVS's
  // read-committed transaction isolation (paper §4.5): a snapshot taken
  // before a transaction's sub-batch hides its effects from readers until
  // the transaction commits. ---
  virtual const Snapshot* GetSnapshot() { return nullptr; }
  virtual void ReleaseSnapshot(const Snapshot* /*snapshot*/) {}
  virtual Status GetAtSnapshot(const Slice& /*key*/, std::string* /*value*/,
                               const Snapshot* /*snapshot*/) {
    return Status::NotSupported("engine has no snapshots");
  }

  // Installs observability callbacks (flush/compaction/stall completion; see
  // EngineEventHooks in src/lsm/options.h). Called once by the owning worker
  // before the instance serves traffic; engines without internal
  // instrumentation ignore it.
  virtual void InstallEventHooks(const EngineEventHooks& /*hooks*/) {}

  // Persists buffered state (test/bench hook).
  virtual Status Flush() { return Status::OK(); }

  // Attempts to clear a sticky storage error after the underlying condition
  // recovered (error governance: the owning worker calls this to restore a
  // degraded partition). Engines without sticky errors return OK.
  virtual Status Resume() { return Status::OK(); }

  // Blocks until background work (compactions etc.) is quiescent.
  virtual void WaitIdle() {}

  virtual size_t ApproximateMemoryUsage() const { return 0; }
};

// Creates the KVS instance rooted at `path`. `recovery_filter` (may be null)
// screens GSN-tagged WAL records during recovery; engines without GSN
// support ignore it.
using EngineFactory = std::function<Status(const std::string& path,
                                           std::function<bool(uint64_t)> recovery_filter,
                                           std::unique_ptr<KVStore>*)>;

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_KV_STORE_H_
