#include "src/core/batch_policy.h"

namespace p2kvs {

namespace {

class PassThroughBatchPolicy final : public BatchPolicy {
 public:
  const char* name() const override { return "pass-through"; }

  void Collect(Request* first, RequestQueue* /*queue*/,
               std::vector<Request*>* group) override {
    group->push_back(first);
  }
};

class GreedySameTypeBatchPolicy final : public BatchPolicy {
 public:
  GreedySameTypeBatchPolicy(const EngineCaps& caps, int max_batch_size)
      : caps_(caps), max_batch_size_(max_batch_size) {}

  const char* name() const override { return "greedy-same-type"; }

  void Collect(Request* first, RequestQueue* queue,
               std::vector<Request*>* group) override {
    group->push_back(first);
    if (IsWriteType(first->type)) {
      // GSN-tagged sub-batches commit alone (paper §4.5), and merging needs
      // an engine batch-write.
      if (first->gsn != 0 || !caps_.batch_write) {
        return;
      }
      while (static_cast<int>(group->size()) < max_batch_size_) {
        Request* next = queue->TryPopIf(
            [](Request* q) { return IsWriteType(q->type) && q->gsn == 0; });
        if (next == nullptr) {
          return;
        }
        group->push_back(next);
      }
      return;
    }
    if (first->type == RequestType::kGet) {
      while (static_cast<int>(group->size()) < max_batch_size_) {
        Request* next =
            queue->TryPopIf([](Request* q) { return q->type == RequestType::kGet; });
        if (next == nullptr) {
          return;
        }
        group->push_back(next);
      }
    }
    // Scans, barriers, transaction bookkeeping, and pre-merged client
    // fan-out groups never merge further.
  }

 private:
  const EngineCaps caps_;
  const int max_batch_size_;
};

}  // namespace

std::unique_ptr<BatchPolicy> MakeGreedySameTypeBatchPolicy(const EngineCaps& caps,
                                                           int max_batch_size) {
  return std::make_unique<GreedySameTypeBatchPolicy>(caps, max_batch_size);
}

std::unique_ptr<BatchPolicy> MakePassThroughBatchPolicy() {
  return std::make_unique<PassThroughBatchPolicy>();
}

std::unique_ptr<BatchPolicy> MakeBatchPolicyFromCaps(const EngineCaps& caps,
                                                     bool enable_obm,
                                                     int max_batch_size) {
  if (!enable_obm || (!caps.batch_write && !caps.multi_get)) {
    return MakePassThroughBatchPolicy();
  }
  return MakeGreedySameTypeBatchPolicy(caps, max_batch_size);
}

}  // namespace p2kvs
