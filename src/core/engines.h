// Engine adapters + factories: RocksLite (full RocksDB profile), LevelLite
// (LevelDB profile: batch-write but no multiget), PebblesLite (tiered
// compaction) and WTLite (B+-tree; neither batch-write nor multiget) — the
// four engine profiles the paper runs p2KVS (or baselines) on.

#ifndef P2KVS_SRC_CORE_ENGINES_H_
#define P2KVS_SRC_CORE_ENGINES_H_

#include "src/btree/btree_store.h"
#include "src/core/kv_store.h"
#include "src/lsm/db.h"

namespace p2kvs {

// Wraps the given LSM options; CompatMode inside `options` decides whether
// the adapter advertises multiget (RocksDB) or not (LevelDB).
EngineFactory MakeLsmEngineFactory(const Options& options);

// Convenience profiles.
EngineFactory MakeRocksLiteFactory(Options options = Options());
EngineFactory MakeLevelLiteFactory(Options options = Options());
// PebblesDB stand-in: LevelDB write path + tiered/fragmented compaction.
EngineFactory MakePebblesLiteFactory(Options options = Options());

EngineFactory MakeWTLiteFactory(BTreeOptions options = BTreeOptions());

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_ENGINES_H_
