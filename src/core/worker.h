// Worker: owns one KVS instance and one request queue; runs the
// opportunistic batching mechanism (paper Algorithm 1) on a thread pinned to
// a dedicated core.

#ifndef P2KVS_SRC_CORE_WORKER_H_
#define P2KVS_SRC_CORE_WORKER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "src/core/kv_store.h"
#include "src/core/request.h"
#include "src/util/mpsc_queue.h"

namespace p2kvs {

class Worker {
 public:
  struct Config {
    int id = 0;
    bool pin_to_cpu = true;
    bool enable_obm = true;
    int max_batch_size = 32;
    // Read-committed transaction isolation (paper §4.5): hold a pre-txn
    // snapshot per in-flight GSN transaction and serve reads from the oldest
    // one, so uncommitted cross-instance writes stay invisible.
    bool txn_read_committed = false;
  };

  Worker(const Config& config, std::unique_ptr<KVStore> store);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void Start();
  // Drains the queue and joins the thread.
  void Stop();

  // Called by user threads (the accessing layer): enqueue and return.
  void Submit(Request* request);

  KVStore* store() { return store_.get(); }
  size_t QueueDepth() const { return queue_.Size(); }

  // OBM effectiveness counters.
  uint64_t write_batches() const { return write_batches_.load(std::memory_order_relaxed); }
  uint64_t writes_batched() const { return writes_batched_.load(std::memory_order_relaxed); }
  uint64_t read_batches() const { return read_batches_.load(std::memory_order_relaxed); }
  uint64_t reads_batched() const { return reads_batched_.load(std::memory_order_relaxed); }
  uint64_t singles() const { return singles_.load(std::memory_order_relaxed); }

 private:
  void Run();
  void ExecuteSingle(Request* request);
  Status ReadOne(const Slice& key, std::string* value);
  void ExecuteWriteGroup(Request* first);  // merge into one WriteBatch
  void ExecuteReadGroup(Request* first);   // merge into one MultiGet
  void ExecuteScan(Request* request);
  void ExecuteRange(Request* request);

  const Config config_;
  std::unique_ptr<KVStore> store_;
  EngineCaps caps_;
  MpscQueue<Request*> queue_;
  std::thread thread_;

  // In-flight GSN transactions' pre-images, oldest first (worker thread
  // private; no locking needed).
  std::deque<std::pair<uint64_t, const Snapshot*>> txn_snapshots_;

  std::atomic<uint64_t> write_batches_{0};
  std::atomic<uint64_t> writes_batched_{0};
  std::atomic<uint64_t> read_batches_{0};
  std::atomic<uint64_t> reads_batched_{0};
  std::atomic<uint64_t> singles_{0};
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_WORKER_H_
