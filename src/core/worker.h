// Worker: owns one KVS instance and one lock-free request queue; runs the
// configured BatchPolicy (default: the opportunistic batching mechanism,
// paper Algorithm 1) on a thread pinned to a dedicated core.

#ifndef P2KVS_SRC_CORE_WORKER_H_
#define P2KVS_SRC_CORE_WORKER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/admission.h"
#include "src/core/batch_policy.h"
#include "src/core/event_listener.h"
#include "src/core/kv_store.h"
#include "src/core/request.h"
#include "src/io/retry.h"
#include "src/util/mutex.h"
#include "src/util/stats_recorder.h"
#include "src/util/thread_annotations.h"
#include "src/util/trace.h"

namespace p2kvs {

// Per-partition health (error governance). A hard storage error — or a
// transient one that survived every retry — degrades the partition to
// read-only instead of failing the whole framework: reads keep flowing,
// writes fail fast, and the worker periodically attempts an auto-resume.
// After too many consecutive failed resumes the partition is marked failed
// (auto attempts stop; an explicit Resume() can still revive it).
enum class WorkerHealth : int {
  kHealthy = 0,
  kDegraded = 1,  // read-only; auto-resume active
  kFailed = 2,    // auto-resume gave up
};

const char* WorkerHealthName(WorkerHealth health);

class Worker {
 public:
  struct Config {
    int id = 0;
    bool pin_to_cpu = true;
    bool enable_obm = true;
    int max_batch_size = 32;
    // Bounded request queue (0 = unbounded). When full, submitters park
    // until the worker drains (backpressure).
    size_t queue_capacity = 0;
    // Batch policy selection; defaults to MakeBatchPolicyFromCaps.
    BatchPolicyFactory batch_policy_factory;
    // Read-committed transaction isolation (paper §4.5): hold a pre-txn
    // snapshot per in-flight GSN transaction and serve reads from the oldest
    // one, so uncommitted cross-instance writes stay invisible.
    bool txn_read_committed = false;

    // --- Error governance. ---
    // For backoff sleeps between retries (null: retry without sleeping).
    Env* env = nullptr;
    // Bounded retry for transient engine faults on the worker hot path.
    RetryPolicy retry;
    // Minimum gap between automatic resume attempts of a degraded partition.
    int auto_resume_interval_us = 10000;
    // Consecutive failed auto-resumes before the partition is marked failed.
    int max_auto_resume_failures = 5;

    // --- Overload control (all off by default). ---
    // Admission control at Submit: CoDel-style shedding on sustained queue
    // wait plus a hard depth ceiling. See AdmissionConfig.
    AdmissionConfig admission;
    // Controller factory; defaults to MakeCoDelAdmissionController.
    AdmissionControllerFactory admission_factory;
    // Aggregate retry-rate bound for this worker (tokens/sec; 0 disables —
    // every transient fault retries per RetryPolicy, the legacy behavior).
    double retry_budget_per_sec = 0;
    double retry_budget_burst = 16;
    // Circuit breaker: hard write failures within the window needed before
    // the partition degrades. 0 = disabled: the FIRST hard error degrades
    // immediately (the pre-existing error-governance contract).
    uint32_t breaker_failure_threshold = 0;
    uint32_t breaker_window_ms = 1000;

    // --- Observability. ---
    // Per-stage timing + distributions in the worker's StatsRecorder. When
    // off, the hot path takes zero clock reads; counters stay correct.
    bool enable_stats = true;
    // Capacity of the worker-owned SpaceSaving hot-key sketch (0 = off: no
    // sketch is constructed and the execute path costs one null compare).
    // Recording is clock-free either way; snapshots drain via kStats.
    size_t hot_key_sketch_k = 0;
    // Framework event callbacks (flush/compaction/stall/health transitions).
    // Not owned; must outlive the worker and be thread-safe.
    EventListener* listener = nullptr;
    // Request-scoped tracing (null = tracing off, the common case; every
    // trace call site guards on it, so the disabled hot path costs one
    // pointer compare and zero clock reads). Not owned; must outlive the
    // worker. The worker uses tracer->ring(id) as its event ring and
    // triggers flight-recorder dumps on hard-error health transitions.
    Tracer* tracer = nullptr;
  };

  Worker(const Config& config, std::unique_ptr<KVStore> store);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void Start();
  // Drains the queue and joins the thread.
  void Stop();

  // Called by user threads (the accessing layer): enqueue and return.
  // Parks only if the queue is bounded and full. With admission control on,
  // a kNormal-priority request may instead be shed — completed immediately
  // with the Busy shed status, never enqueued.
  //
  // MAY BLOCK (bounded queue + full): only synchronous callers — which are
  // about to park on the request's completion anyway — may use this. Code
  // running on a worker thread, an event loop, or any completion callback
  // must use SubmitControl / SubmitShedOnFull below; a worker parked on its
  // own full queue can never drain it (the self-deadlock class the
  // p2kvs-lint blocking-context rule rejects statically).
  void Submit(Request* request);

  // Control-plane submission (kBarrier / kStats drains): never parks and is
  // never refused — control requests bypass both admission and the capacity
  // bound (they are few, unshedable by contract, and issued from contexts
  // that must not block, e.g. GetStatsAsync on a worker thread).
  void SubmitControl(Request* request);

  // Asynchronous data submission: never parks. A bounded queue that is full
  // sheds the request instead — completed inline with the Busy shed status
  // and counted through the same `shed` door as an admission refusal. This
  // is what keeps the *Async API's "never blocks" contract true under
  // queue_capacity, and what lets the TCP front-end's epoll thread submit
  // without ever stalling on one hot partition's backlog.
  void SubmitShedOnFull(Request* request);

  // Fan-out group admission, called by P2KVS before arming a multi-partition
  // join: pure probe, no state change. A group is shed all-or-nothing — if
  // any involved partition refuses, P2KVS calls CountFanoutShed() on every
  // involved partition and submits nothing (the slices that would have been
  // submitted carry RequestPriority::kCritical otherwise, so a group that
  // passed the probe cannot be half-shed by a racing overload signal).
  bool ProbeAdmission() const {
    return admission_ == nullptr || admission_->Admit(queue_.Size());
  }
  // Accounts one fan-out slice shed at P2KVS level before submission.
  void CountFanoutShed();

  // Overload-accounting counters (see WorkerStatsSnapshot for semantics).
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_acquire); }
  uint64_t shed() const { return shed_.load(std::memory_order_acquire); }
  uint64_t expired() const {
    return expired_dequeue_.load(std::memory_order_relaxed) +
           expired_execute_.load(std::memory_order_relaxed);
  }
  uint64_t breaker_trips() const { return breaker_.trips(); }

  KVStore* store() { return store_.get(); }
  size_t QueueDepth() const { return queue_.Size(); }
  const char* batch_policy_name() const { return batch_policy_->name(); }

  WorkerHealth health() const {
    return static_cast<WorkerHealth>(health_.load(std::memory_order_acquire));
  }
  // Writes rejected fast because the partition was degraded/failed.
  uint64_t degraded_rejects() const {
    return degraded_rejects_.load(std::memory_order_relaxed);
  }
  uint64_t resume_attempts() const {
    return resume_attempts_.load(std::memory_order_relaxed);
  }
  uint64_t health_transitions() const {
    return health_transitions_.load(std::memory_order_relaxed);
  }

  // Attempts to restore a degraded/failed partition via KVStore::Resume().
  // Safe from any thread (the engine's Resume is thread-safe); returns OK and
  // marks the partition healthy on success. No-op when already healthy.
  Status TryResume() EXCLUDES(resume_mu_);

  // The Worker whose loop the calling thread is running, or null when the
  // caller is not a worker thread. Lets the accessing layer fail fast when a
  // worker-thread callback issues a blocking drain/barrier request it would
  // have to serve itself (the GetStats()/WaitIdle() self-deadlock).
  static const Worker* CurrentThreadWorker();

  // Batching effectiveness counters (engine-level groups, from either the
  // BatchPolicy or pre-merged client fan-out requests).
  uint64_t write_batches() const { return write_batches_.load(std::memory_order_relaxed); }
  uint64_t writes_batched() const { return writes_batched_.load(std::memory_order_relaxed); }
  uint64_t read_batches() const { return read_batches_.load(std::memory_order_relaxed); }
  uint64_t reads_batched() const { return reads_batched_.load(std::memory_order_relaxed); }
  uint64_t singles() const { return singles_.load(std::memory_order_relaxed); }

 private:
  void Run();
  // Shared submit path behind Submit/SubmitControl/SubmitShedOnFull: the
  // overflow policy is the only difference between the three entry points.
  void SubmitInternal(Request* request, PushOverflow overflow);
  // kStats drain request: the worker thread copies its recorder, thread-local
  // PerfContext and IO counters into request->stats_out. Because only the
  // owning thread ever writes those, the copy races with nothing; the join
  // Completion publishes it to the aggregator.
  void HandleStatsRequest(Request* request);
  WorkerStatsSnapshot SnapshotStats();
  void ExecuteSingle(Request* request);
  // The engine call for one unbatched request; factored out so ExecuteSingle
  // can wrap it in a trace scope only when the request is sampled.
  Status ExecuteSingleOp(Request* request);
  Status ReadOne(const Slice& key, std::string* value, uint64_t deadline_nanos);
  void ExecuteWriteGroup(const std::vector<Request*>& group);  // one WriteBatch
  void ExecuteReadGroup(const std::vector<Request*>& group);   // one MultiGet
  void ExecuteMultiGet(Request* request);  // pre-merged client fan-out group
  void ExecuteScan(Request* request);
  void ExecuteRange(Request* request);

  // Records every key `r` touches into the hot-key sketch. Worker thread
  // only; call sites guard on sketch_ != nullptr so the disabled path costs
  // one null compare (and zero clock reads — the sketch never reads a clock).
  void SketchRequestKeys(const Request* r);

  // Degrades the partition if `s` is a storage error that survived retries.
  // `trace_id` names the failing request; with tracing on, a request that
  // was not sampled is assigned a trace id here (always-trace-on-error) so
  // the kError event — and the flight-recorder dump a degradation triggers —
  // can identify it.
  void MaybeDegrade(const Status& s, uint64_t trace_id);
  // Counts the governance state change and informs the listener.
  void NotifyHealthTransition(WorkerHealth from, WorkerHealth to);
  // Time-gated auto-resume attempt from the worker loop (kDegraded only).
  void MaybeAutoResume() EXCLUDES(resume_mu_);
  // True if the write request was rejected fast (partition not healthy).
  bool RejectIfUnhealthy(Request* request);

  // --- Overload-control helpers. ---
  // Normal completion or fast-reject: traces, counts `completed`, completes.
  // The single exit for every request a worker resolves with a real status.
  void FinishRequest(Request* request, const Status& s, uint64_t batch_id);
  // Refusal on the submit path — admission (kNormal data requests) or a full
  // bounded queue under SubmitShedOnFull: counts `shed`, completes with the
  // Busy shed status. The request is never enqueued.
  void ShedAtSubmit(Request* request);
  // Deadline passed before the engine ran the request: counts the matching
  // expired_* bucket, scatters DeadlineExceeded into MultiGet slices, and
  // completes. Worker thread only.
  void ExpireRequest(Request* request, bool at_dequeue);
  // Shed-storm detection: N sheds within a window trigger one flight-recorder
  // dump per store lifetime (satellite of the overload post-mortem story).
  void NoteShed();

  // --- Tracing helpers (all no-ops unless config.tracer is set). ---
  // Appends one event to this worker's ring on behalf of `trace_id`.
  // Call sites guard on trace_ring_ != nullptr && trace_id != 0.
  void EmitTrace(TraceEventType type, uint64_t trace_id, uint64_t arg1, uint64_t arg2) {
    TraceAppend(trace_ring_, type, static_cast<uint32_t>(config_.id), trace_id, arg1,
                arg2);
  }
  // Emits kComplete for a traced request and counts the lifecycle end.
  // Must run BEFORE Request::Complete — async requests self-delete there.
  void EmitTraceComplete(Request* request, const Status& s, uint64_t batch_id) {
    if (trace_ring_ == nullptr || request->trace_id == 0) return;
    EmitTrace(TraceEventType::kComplete, request->trace_id, TraceStatusCode(s),
              batch_id);
    config_.tracer->CountSampledComplete();
  }
  // Dispatch-scoped batch id, globally unique without coordination (worker
  // id in the high bits; the low bits are a worker-private counter). Links
  // OBM merge events to the WAL-append / execute spans of the same group.
  uint64_t NextBatchId() {
    next_batch_seq_ += 1;
    return (static_cast<uint64_t>(config_.id) + 1) << 40 | next_batch_seq_;
  }

  const Config config_;
  std::unique_ptr<KVStore> store_;
  EngineCaps caps_;
  RequestQueue queue_;
  std::unique_ptr<BatchPolicy> batch_policy_;
  std::vector<Request*> group_;  // worker-thread private scratch
  // End timestamp of the current dispatch's most recently finished stage
  // (worker-thread private, valid only while enable_stats). Each stage reuses
  // it as its start time so consecutive stages cost one clock read, not two.
  uint64_t stage_ts_ = 0;
  std::thread thread_;

  // In-flight GSN transactions' pre-images, oldest first (worker thread
  // private; no locking needed).
  std::deque<std::pair<uint64_t, const Snapshot*>> txn_snapshots_;

  // This worker's trace ring (config.tracer->ring(id); null = tracing off).
  // User threads append enqueue events, the worker thread everything else;
  // the ring itself is multi-writer wait-free.
  TraceRing* trace_ring_ = nullptr;
  // Worker-thread-private batch id counter (see NextBatchId).
  uint64_t next_batch_seq_ = 0;

  std::atomic<uint64_t> write_batches_{0};
  std::atomic<uint64_t> writes_batched_{0};
  std::atomic<uint64_t> read_batches_{0};
  std::atomic<uint64_t> reads_batched_{0};
  std::atomic<uint64_t> singles_{0};

  // Overload accounting: every data request entering Submit counts once in
  // submitted_ and resolves through exactly one of completed_/shed_/expired_.
  // Door increments that run on submit threads (shed, closed-queue abort)
  // use release so a snapshot that observes the door also observes the
  // matching submitted_ increment (SelfCheck's <= invariant); worker-thread
  // door increments are ordered by the queue's push/pop release/acquire.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> expired_dequeue_{0};
  std::atomic<uint64_t> expired_execute_{0};

  // Shed-storm window (see NoteShed; user threads race on these, the count
  // is deliberately approximate).
  std::atomic<uint64_t> storm_window_start_{0};
  std::atomic<uint32_t> storm_count_{0};
  std::atomic<bool> storm_dumped_{false};

  // Admission controller (null = admission off). Constructed before Start()
  // and immutable afterwards.
  std::unique_ptr<AdmissionController> admission_;
  // Worker-thread-only overload governors (see admission.h / retry.h).
  RetryBudget retry_budget_;
  CircuitBreaker breaker_;

  // Stage timings + distributions; written only by the worker thread,
  // snapshotted via kStats drain requests (never read live cross-thread).
  StatsRecorder recorder_;
  // Hot-key sketch (null = sensing off). Same single-writer discipline as
  // recorder_: only the worker thread records or snapshots it.
  std::unique_ptr<obs::SpaceSavingSketch> sketch_;

  // Health state machine (resume_mu_ serializes transitions; health_ itself
  // is atomic so readers never block).
  std::atomic<int> health_{static_cast<int>(WorkerHealth::kHealthy)};
  std::atomic<uint64_t> degraded_rejects_{0};
  std::atomic<uint64_t> resume_attempts_{0};
  std::atomic<uint64_t> health_transitions_{0};
  Mutex resume_mu_;
  uint64_t last_resume_attempt_us_ GUARDED_BY(resume_mu_) = 0;
  int consecutive_resume_failures_ GUARDED_BY(resume_mu_) = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_WORKER_H_
