// P2KVS: the paper's contribution. A portable 2-dimensional parallelizing
// framework over unmodified KVS instances:
//
//   horizontal — the key space is hash-partitioned over N instances, each
//   owned by one worker thread pinned to a core (no shared WAL / MemTable /
//   tree between workers);
//
//   vertical — user threads never touch an instance: they enqueue requests
//   on the owning worker's lock-free queue and park on a pooled completion;
//   each worker drains its queue through a pluggable BatchPolicy (default:
//   the opportunistic batching mechanism, Algorithm 1), merging runs of
//   same-type requests into one WriteBatch or one MultiGet.
//
// Plus: client-side fan-out (MultiGet / MultiWrite split per partition and
// joined on one countdown completion), parallel RANGE / SCAN over the
// partitions (§4.4), GSN-tagged cross-instance transactions with crash
// recovery (§4.5), and asynchronous write interfaces.

#ifndef P2KVS_SRC_CORE_P2KVS_H_
#define P2KVS_SRC_CORE_P2KVS_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engines.h"
#include "src/core/event_listener.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/core/partitioner.h"
#include "src/core/kv_store.h"
#include "src/core/txn_log.h"
#include "src/core/worker.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/skew.h"
#include "src/util/histogram.h"
#include "src/util/stats_recorder.h"
#include "src/util/trace.h"

namespace p2kvs {

struct P2kvsOptions {
  // Number of KVS instances / worker threads. The paper defaults to 8,
  // matched to its hardware; size to your core count and SSD parallelism.
  int num_workers = 8;

  // Pin each worker to a dedicated core (paper §4.1; Figure 5a shows a
  // 10-15% gain from pinning).
  bool pin_workers = true;

  // Opportunistic batching (Algorithm 1).
  bool enable_obm = true;
  // Upper bound on requests merged per batch (paper default: 32), bounding
  // tail latency.
  int max_batch_size = 32;

  // Bounded per-worker request queues (0 = unbounded). When a queue is
  // full, submitters park until the worker drains — backpressure instead of
  // unbounded memory growth under overload. Per-worker depth is observable
  // via P2kvsStats::queue_depths.
  size_t queue_capacity = 0;

  // Vertical-batching policy selection; null picks the default from each
  // engine's capabilities (greedy same-type merge per Algorithm 1, or
  // pass-through for engines without batch APIs, §4.6).
  BatchPolicyFactory batch_policy_factory;

  // Engine factory; defaults to RocksLite with default LSM options.
  EngineFactory engine_factory;

  // Key-space partition strategy (§4.2). Defaults to the paper's modular
  // hash; see partitioner.h for range and two-choice alternatives. Changing
  // the partitioner of an existing store requires rebuilding the instances.
  Partitioner partitioner;

  // Environment for the framework's own files (txn log). Should match the
  // engines' env.
  Env* env = Env::Default();

  // SCAN strategy (§4.4): a serial global merge-iterator, or the parallel
  // over-scan-then-filter approach that trades extra reads for parallelism.
  enum class ScanMode { kGlobalMerge, kParallel };
  ScanMode scan_mode = ScanMode::kParallel;

  // Read-committed transaction isolation (paper §4.5's snapshot sketch):
  // while a WriteTxn is in flight on an instance, reads on that instance are
  // served from a pre-transaction snapshot, so a transaction's effects become
  // visible only after it commits. Requires an engine with snapshot support
  // (RocksLite/LevelLite); off by default, matching the paper's prototype.
  bool txn_read_committed = false;

  // --- Error governance (per-worker; see WorkerHealth in worker.h). ---
  // Bounded retry of transient engine faults on the worker hot path.
  RetryPolicy retry;
  // Minimum gap between a degraded worker's automatic resume attempts.
  int auto_resume_interval_us = 10000;
  // Consecutive failed auto-resumes before a partition is marked failed
  // (automatic attempts stop; explicit Resume() still works).
  int max_auto_resume_failures = 5;

  // --- Overload control (all off by default; see admission.h and the
  // "Overload control" section of DESIGN.md). ---
  // Non-zero: every client request is stamped with an absolute deadline of
  // now + this many milliseconds at submit. A request whose deadline passes
  // while it is still queued (or between batch collect and the engine call)
  // completes with Status::DeadlineExceeded instead of executing — dead work
  // is dropped, not served late. Control requests (WaitIdle barriers, stats
  // drains, transaction EndTxn) never carry deadlines.
  int default_deadline_ms = 0;
  // Per-worker admission control (admission.enabled gates everything). The
  // default controller is CoDel-style: it sheds new requests while the
  // worker's queue-wait EWMA has been above `target_queue_wait_us` for a full
  // interval, plus a hard queue-depth cap. Fan-out operations (MultiGet /
  // MultiWrite / WriteTxn / parallel Range / Scan) are admitted or shed
  // atomically: all involved partitions accept or the whole operation is
  // refused, so no partial fan-out executes.
  AdmissionConfig admission;
  // Optional replacement controller (testing / alternative control laws).
  AdmissionControllerFactory admission_factory;
  // Non-zero: each worker meters engine retries through a token bucket of
  // this many retry tokens per second (burst below). When the bucket is
  // empty a transient fault fails fast instead of retrying — under overload
  // retries amplify load exactly when it hurts most.
  double retry_budget_per_sec = 0;
  double retry_budget_burst = 16;
  // Non-zero: a per-partition circuit breaker degrades the partition (same
  // degraded state as a hard error, so auto-resume half-opens it) after this
  // many hard engine failures within breaker_window_ms — instead of the
  // default degrade-on-first-hard-error. Corruption still degrades
  // immediately; the breaker only absorbs IO errors.
  uint32_t breaker_failure_threshold = 0;
  uint32_t breaker_window_ms = 1000;

  // --- Observability. ---
  // Per-stage timing and distributions in each worker's StatsRecorder
  // (queue-wait / batch-build / execute / complete, batch-size histogram).
  // When off, the request path takes zero clock reads; throughput counters
  // and GetStats() keep working.
  bool enable_stats = true;
  // Framework event callbacks: flush/compaction/stall completion, health
  // transitions, periodic stats dumps. Shared, not owned exclusively; must be
  // thread-safe (see event_listener.h for the threading contract).
  std::shared_ptr<EventListener> listener;
  // Non-zero: the telemetry loop hands a full GetStats() JSON snapshot to
  // listener->OnStatsDump() (or stderr when no listener is set) at this
  // cadence. Shares the loop's single kStats drain with the metrics windows
  // below — one drain feeds both, never two.
  int stats_dump_period_ms = 0;
  // Per-worker SpaceSaving hot-key sketch capacity (0 = off: no sketch is
  // constructed and the execute path costs one null compare). Also sizes the
  // global top-K of the skew report in GetStats(). Recording is clock-free;
  // sketches drain through the same kStats path as everything else.
  size_t hot_key_sketch_k = 0;
  // Non-zero: the telemetry loop drains all workers every period and feeds a
  // MetricsRegistry ring of windowed snapshots — per-window rates (QPS,
  // shed/expired/retry, bytes/s), windowed p50/p95/p99, process CPU/RSS
  // gauges — and runs P2kvsStats::SelfCheck() on each window. The registry
  // backs the admin endpoint's /metrics windowed families.
  int metrics_window_ms = 0;
  // Windows retained in the ring (metrics_window_ms > 0).
  size_t metrics_window_count = 60;
  // Request-scoped tracing + flight recorder (see trace.h). Off by default;
  // when trace.enabled is false no Tracer is constructed and the request
  // path costs one null-pointer compare. With tracing on but a request
  // unsampled, the only cost is the sampling decision itself — zero clock
  // reads (asserted via PerfContext::trace_clock_reads).
  TraceConfig trace;
};

// Health of one partition (error governance).
struct WorkerHealthInfo {
  int worker_id = 0;
  WorkerHealth health = WorkerHealth::kHealthy;
  uint64_t degraded_rejects = 0;  // writes rejected fast while unhealthy
  uint64_t resume_attempts = 0;   // auto + explicit resume attempts
};

struct P2kvsHealth {
  std::vector<WorkerHealthInfo> workers;

  bool AllHealthy() const {
    for (const WorkerHealthInfo& w : workers) {
      if (w.health != WorkerHealth::kHealthy) {
        return false;
      }
    }
    return true;
  }
  int NumUnhealthy() const {
    int n = 0;
    for (const WorkerHealthInfo& w : workers) {
      n += w.health != WorkerHealth::kHealthy;
    }
    return n;
  }
};

// Aggregated framework statistics. Produced by P2KVS::GetStats() via one
// kStats drain request per worker: each worker thread snapshots its own
// recorder and thread-locals, so the aggregate is race-free and internally
// consistent per worker (no torn totals). The flat counters mirror the
// pre-observability fields; `workers`/`totals` carry the full per-stage
// breakdown.
struct P2kvsStats {
  uint64_t requests_submitted = 0;
  uint64_t write_batches = 0;     // merged write groups executed
  uint64_t writes_batched = 0;    // write requests covered by those groups
  uint64_t read_batches = 0;      // multiget groups executed
  uint64_t reads_batched = 0;
  uint64_t singles = 0;           // requests executed unbatched
  uint64_t degraded_rejects = 0;  // writes rejected fast by unhealthy partitions

  // --- Overload-control counters (aggregated across workers; see the
  // accounting contract on WorkerStatsSnapshot). All zero when the overload
  // features are off.
  uint64_t submitted = 0;       // data requests entering the workers
  uint64_t completed = 0;       // resolved with a real status (incl. errors)
  uint64_t shed = 0;            // refused by admission control
  uint64_t expired = 0;         // deadline passed before the engine ran them
  uint64_t breaker_trips = 0;   // circuit-breaker degrade transitions
  uint64_t retries_denied = 0;  // retry-budget fast-fail decisions
  // Current depth of each worker's request queue (backpressure visibility;
  // compare against P2kvsOptions::queue_capacity).
  std::vector<size_t> queue_depths;

  // --- Async IO (global IoStats counters; see src/io/io_stats.h). All zero
  // when no engine created an AsyncIoContext. ---
  uint64_t async_submissions = 0;  // ops submitted through async contexts
  uint64_t async_max_queue_depth = 0;  // high-water mark of in-flight ops
  int64_t async_reads_in_flight = 0;   // reads in flight at snapshot time

  // --- Tracing counters (all zero when options.trace.enabled is false). ---
  bool trace_enabled = false;
  uint64_t trace_events = 0;     // events appended across all rings, pre-drop
  uint64_t trace_dropped = 0;    // events overwritten by ring wrap (no silent loss)
  uint64_t trace_sampled = 0;    // requests sampled at submit
  uint64_t trace_completed = 0;  // sampled requests completed by a worker
  uint64_t trace_flight_dumps = 0;  // flight-recorder dumps written

  // Full per-partition snapshots (stage times, distributions, engine
  // breakdown, foreground IO, governance) and their merge.
  std::vector<WorkerStatsSnapshot> workers;
  WorkerStatsSnapshot totals;

  // Skew report built from the per-worker snapshots: per-partition load
  // shares, imbalance coefficients, and (with hot_key_sketch_k > 0) the
  // global top-K heavy hitters. The sensor output ROADMAP item 1 builds on.
  obs::SkewReport skew;

  double AvgWriteBatchSize() const {
    return write_batches == 0 ? 0 : static_cast<double>(writes_batched) / write_batches;
  }

  // Verifies the recorder's accounting invariants (see stats_recorder.h):
  // per-stage nanos sum to at most the end-to-end total, the batch-size
  // histogram matches the dispatch counters exactly, and every data request
  // resolves through exactly one door (completed + shed + expired <=
  // submitted, per worker and in aggregate — equality once the pipeline is
  // quiescent). With tracing enabled it also checks the trace lifecycle
  // invariants — every worker-completed sampled request contributes at least
  // its enqueue+dequeue+complete events, completions never exceed samples,
  // and the drop counter stays consistent with the append counter. Returns
  // the first violation; used by tests and the CI benchmark smoke step.
  Status SelfCheck() const;
  std::string ToJson() const;
};

class P2KVS {
 public:
  // Opens (creating if needed) the store rooted at `path`: one subdirectory
  // per instance plus the transaction log.
  static Status Open(const P2kvsOptions& options, const std::string& path,
                     std::unique_ptr<P2KVS>* store);

  ~P2KVS();

  P2KVS(const P2KVS&) = delete;
  P2KVS& operator=(const P2KVS&) = delete;

  // --- Synchronous interface (user thread sleeps while the worker runs). ---
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);

  // --- Asynchronous write interface (§4.1: Put(K, V, callback)). ---
  void PutAsync(const Slice& key, const Slice& value, std::function<void(const Status&)> cb);
  void DeleteAsync(const Slice& key, std::function<void(const Status&)> cb);

  // --- Asynchronous read / fan-out interface (network front-end). ---
  // Callback-completed variants of Get / MultiGet / MultiWrite / Scan /
  // GetStats: the caller never parks — completion is delivered on the worker
  // thread that resolved the (last) underlying request, exactly like
  // PutAsync. A connection handler can therefore submit every protocol
  // opcode without ever blocking on the engine. Callbacks must not issue
  // blocking P2KVS calls (they run on worker threads; GetStats()/WaitIdle()
  // detect this and fail fast, see below).
  void GetAsync(const Slice& key, std::function<void(const Status&, std::string value)> cb);
  // Keys are copied; per-key statuses/values are positional with `keys`.
  // A refused fan-out (admission control) reports the shed status per key
  // without submitting anything, like the sync MultiGet.
  void MultiGetAsync(std::vector<std::string> keys,
                     std::function<void(std::vector<Status>, std::vector<std::string>)> cb);
  // Same partition-atomic-only semantics as MultiWrite.
  void MultiWriteAsync(WriteBatch updates, std::function<void(const Status&)> cb);
  // Always uses the parallel over-scan strategy (the global-merge mode has no
  // per-partition requests to join asynchronously). Pairs from healthy
  // partitions survive a partition failure; the first error is reported.
  void ScanAsync(const Slice& begin, size_t count,
                 std::function<void(const Status&,
                                    std::vector<std::pair<std::string, std::string>>)> cb);

  // --- Client-side fan-out (one pre-merged group request per involved
  // partition, joined on a single countdown completion). ---
  // Batched point lookups. Keys may repeat and may all hash to one
  // partition; values/statuses are positional with `keys`. Key-level
  // outcomes (e.g. NotFound) are reported per key, never as a global error.
  std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                               std::vector<std::string>* values);
  // Applies a batch spanning instances WITHOUT transactional atomicity:
  // each per-partition sub-batch is atomic, but a mid-flight failure can
  // leave other partitions applied (use WriteTxn for all-or-nothing).
  // Sub-batches carry no GSN, so workers may fold them into larger groups.
  Status MultiWrite(WriteBatch* updates);

  // --- Range queries (§4.4). ---
  // All pairs in [begin, end), executed as parallel sub-RANGEs. Partition
  // failures are surfaced like MultiGet's per-key outcomes: `out` always
  // holds the merged pairs from every partition that succeeded, the return
  // value is the first partition error (OK when all succeeded), and
  // `partition_status` (optional) receives each partition's own outcome — so
  // a single faulty or degraded partition no longer erases the other
  // partitions' results.
  Status Range(const Slice& begin, const Slice& end,
               std::vector<std::pair<std::string, std::string>>* out,
               std::vector<Status>* partition_status = nullptr);
  // `count` pairs starting at `begin` (strategy per options.scan_mode).
  // Parallel mode reports partial results exactly like Range; note that with
  // a failed partition the result may be missing keys that partition owned.
  Status Scan(const Slice& begin, size_t count,
              std::vector<std::pair<std::string, std::string>>* out,
              std::vector<Status>* partition_status = nullptr);
  // Serial global merge iterator over all instances (RocksDB
  // MergeIterator-style); caller owns.
  Iterator* NewGlobalIterator();

  // --- Transactions (§4.5). ---
  // Atomically applies a batch possibly spanning instances: stamps one GSN,
  // persists begin/commit in the txn log, splits per partition. After a
  // crash, sub-batches of uncommitted GSNs are rolled back during recovery.
  Status WriteTxn(WriteBatch* updates);

  // --- Admin / observability. ---
  int num_workers() const { return static_cast<int>(workers_.size()); }
  KVStore* instance(int i);
  // The worker a key routes to (the balanced request allocation of §4.2).
  int PartitionOf(const Slice& key) const;
  Status FlushAll();
  // Blocks until every request already submitted has executed (per-worker
  // barrier requests) and engine background work is quiescent. Returns
  // InvalidArgument without blocking when called from one of this store's
  // worker threads (e.g. inside a PutAsync callback or an EventListener
  // hook): the worker cannot drain the barrier it would be waiting on.
  Status WaitIdle();
  // Per-partition health snapshot (error governance).
  P2kvsHealth Health() const;
  // Explicitly attempts to resume every degraded/failed partition; returns
  // the first failure (all partitions are still attempted).
  Status Resume();
  // Race-free aggregate of every worker's recorder: one kStats drain request
  // per worker, joined on a countdown completion. Millisecond-scale (it waits
  // behind queued work). Calling it from one of this store's worker threads
  // (a PutAsync/GetAsync callback, an EventListener hook) used to deadlock
  // behind the drain request the worker itself would have to serve; it is now
  // detected via a thread-local worker id and fails fast: the Status overload
  // returns InvalidArgument, the legacy overload returns empty stats. Use
  // GetStatsAsync from worker-thread context instead.
  Status GetStats(P2kvsStats* stats) const;
  P2kvsStats GetStats() const;
  // Non-blocking variant: the callback runs on the worker thread that served
  // the last drain request. Safe from any thread, including worker threads.
  void GetStatsAsync(std::function<void(P2kvsStats)> cb) const;
  // Human-readable report built from GetStats(): per-worker table, stage
  // breakdown, latency distributions. For machines, use GetStats().ToJson().
  std::string GetStatsString() const;
  size_t ApproximateMemoryUsage() const;
  // Current depth of each worker's request queue.
  std::vector<size_t> QueueDepths() const;

  // --- Tracing (options.trace; see trace.h). ---
  // The framework tracer, or null when tracing is disabled.
  Tracer* tracer() const { return tracer_.get(); }
  // Serializes the current ring contents to Perfetto trace_event JSON
  // (empty object when tracing is disabled). Open the result in
  // ui.perfetto.dev — one track per worker.
  std::string ExportTraceJson() const;
  // Same, written to `path`. NotSupported when tracing is disabled.
  Status ExportTrace(const std::string& path) const;
  // Manually triggers a flight-recorder dump (as a hard error or SIGUSR2
  // would). No-op when tracing is disabled.
  void DumpFlightRecorder(const std::string& reason = "manual");

  // --- Windowed telemetry (options.metrics_window_ms; see src/obs/). ---
  // The registry of windowed metric snapshots, or null when neither
  // metrics_window_ms nor stats_dump_period_ms started the telemetry loop.
  // Thread-safe; the admin endpoint reads windows from here.
  obs::MetricsRegistry* metrics_registry() const { return registry_.get(); }

 private:
  P2KVS(const P2kvsOptions& options, std::string path);

  Status Init();
  // Routes every update in `updates` to its partition's sub-batch.
  Status SplitByPartition(WriteBatch* updates, std::vector<WriteBatch>* parts) const;
  // Absolute deadline for a client request entering now (0 = none). One
  // clock read per user operation; fan-out slices share the result.
  uint64_t DeadlineFromOptions() const;
  // Atomic fan-out admission: probes every involved partition's controller;
  // on any refusal counts a shed on ALL of them (the operation is refused as
  // a unit) and returns the refusing worker's id. -1 = admitted.
  int ProbeFanoutAdmission(const std::vector<size_t>& involved);
  // True when the calling thread is one of THIS store's worker threads (a
  // worker of another store is fine — it can still be served).
  bool OnOwnWorkerThread() const;
  // Merges per-worker snapshots (already filled in stats->workers) into the
  // aggregate counters and builds the skew report; shared by the sync and
  // async GetStats paths.
  void FinalizeStats(P2kvsStats* stats) const;
  // One thread, one drain per tick: feeds the MetricsRegistry window ring,
  // runs SelfCheck per window, samples process CPU/RSS, and emits the
  // periodic OnStatsDump JSON at its own cadence — replacing the old
  // dedicated stats-dump thread so kStats traffic is never doubled.
  void TelemetryLoop() EXCLUDES(telemetry_mu_);

  P2kvsOptions options_;
  const std::string path_;
  std::unique_ptr<TxnLog> txn_log_;
  // Constructed before the workers (they hold raw pointers into it) and
  // destroyed after them; null when options.trace.enabled is false.
  std::unique_ptr<Tracer> tracer_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Windowed metrics ring (telemetry loop running). Constructed before the
  // workers start and destroyed after the loop joins; pointer-stable for the
  // admin endpoint's lifetime.
  std::unique_ptr<obs::MetricsRegistry> registry_;

  // Telemetry loop thread (metrics_window_ms > 0 or stats_dump_period_ms >
  // 0). Joined before the workers stop so every GetStats() it issues finds
  // live queues.
  std::thread telemetry_thread_;
  Mutex telemetry_mu_;
  CondVar telemetry_cv_{&telemetry_mu_};
  bool telemetry_stop_ GUARDED_BY(telemetry_mu_) = false;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_P2KVS_H_
