// Completion: the pooled countdown primitive the whole submission pipeline
// joins on. One Completion can cover one request (a sync Put/Get waiting for
// its worker) or a whole fan-out (MultiGet / MultiWrite / parallel RANGE /
// WriteTxn joining on every involved partition); either way the waiter parks
// on a single futex word (C++20 std::atomic::wait) — no per-request mutex or
// condition variable exists anywhere on the request path.

#ifndef P2KVS_SRC_CORE_COMPLETION_H_
#define P2KVS_SRC_CORE_COMPLETION_H_

#include <atomic>
#include <cstdint>

#include "src/util/status.h"

namespace p2kvs {

class Completion {
 public:
  // Starts with `outstanding` operations to wait for; more can be armed
  // with Add() before Wait() is entered.
  explicit Completion(uint32_t outstanding = 0) : outstanding_(outstanding) {}

  Completion(const Completion&) = delete;
  Completion& operator=(const Completion&) = delete;

  // Arms n more outstanding operations. Must not race with the count
  // reaching zero while a waiter could observe it (arm everything before
  // waiting, or arm each operation before submitting it).
  void Add(uint32_t n = 1) { outstanding_.fetch_add(n, std::memory_order_relaxed); }

  // Completer side: records the first non-OK status and releases one count.
  // The completion (and anything joined on it) may be destroyed the moment
  // the last count is released — callers must not touch shared state after.
  void Finish(const Status& s) {
    if (!s.ok()) {
      bool expected = false;
      if (failed_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        first_error_ = s;
      }
    }
    uint32_t prev = outstanding_.fetch_sub(1, std::memory_order_release);
    if (prev == 1) {
      outstanding_.notify_all();
    }
  }

  // Parks until every armed operation finished; returns the first non-OK
  // status any of them reported (OK if all succeeded).
  Status Wait() {
    uint32_t n;
    while ((n = outstanding_.load(std::memory_order_acquire)) != 0) {
      outstanding_.wait(n, std::memory_order_acquire);
    }
    return failed_.load(std::memory_order_acquire) ? first_error_ : Status::OK();
  }

  bool done() const { return outstanding_.load(std::memory_order_acquire) == 0; }

 private:
  std::atomic<uint32_t> outstanding_;
  std::atomic<bool> failed_{false};
  // Written once by the CAS winner before its count release; read by the
  // waiter after observing zero (synchronized via the release sequence on
  // outstanding_).
  Status first_error_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_COMPLETION_H_
