#include "src/core/txn_log.h"

#include "src/util/coding.h"
#include "src/wal/log_reader.h"

namespace p2kvs {

namespace {
enum TxnTag : uint8_t { kTxnBegin = 1, kTxnCommit = 2 };
}  // namespace

TxnLog::TxnLog(Env* env, std::string path, const RetryPolicy& retry)
    : env_(env), path_(std::move(path)), retry_(retry) {}

TxnLog::~TxnLog() {
  if (file_ != nullptr) {
    // Destructor cannot propagate; commit records were already synced by
    // their own Append path.
    file_->Close().IgnoreError();
  }
}

Status TxnLog::Open(Env* env, const std::string& path, std::unique_ptr<TxnLog>* log,
                    const RetryPolicy& retry) {
  log->reset();
  auto txn_log = std::unique_ptr<TxnLog>(new TxnLog(env, path, retry));
  Status s = txn_log->Recover();
  if (!s.ok()) {
    return s;
  }
  *log = std::move(txn_log);
  return Status::OK();
}

Status TxnLog::Recover() {
  // Runs single-threaded (before Open() publishes the object), but takes the
  // lock anyway so the guarded-field accesses stay analysis-clean.
  MutexLock lock(&mu_);
  std::set<uint64_t> begun;
  std::set<uint64_t> committed;
  if (env_->FileExists(path_)) {
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(path_, &file);
    if (!s.ok()) {
      return s;
    }
    log::Reader reader(file.get(), nullptr, /*checksum=*/true);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 2) {
        continue;
      }
      uint8_t tag = static_cast<uint8_t>(record[0]);
      record.remove_prefix(1);
      uint64_t gsn = 0;
      if (!GetVarint64(&record, &gsn)) {
        continue;
      }
      max_gsn_ = std::max(max_gsn_, gsn);
      if (tag == kTxnBegin) {
        begun.insert(gsn);
      } else if (tag == kTxnCommit) {
        committed.insert(gsn);
        begun.erase(gsn);
      }
    }
  }
  uncommitted_at_recovery_ = begun.size();

  // Collapse the replayed commit set into the watermark representation:
  // every GSN up to max_gsn_ is now resolved (a begun-but-uncommitted or
  // never-seen GSN did not survive the crash — its sub-batches are rolled
  // back), so the watermark jumps straight to max_gsn_ and only the
  // non-committed GSNs persist, as the aborted exception set.
  watermark_ = max_gsn_;
  for (uint64_t gsn = 1; gsn <= max_gsn_; gsn++) {
    if (committed.count(gsn) == 0) {
      aborted_.insert(gsn);
    }
  }

  uint64_t size = 0;
  Status s;
  if (env_->FileExists(path_)) {
    // The writer's block framing starts from this offset; a silent zero
    // would misalign every record appended after reopen.
    s = env_->GetFileSize(path_, &size);
    if (!s.ok()) {
      return s;
    }
  }
  s = env_->NewAppendableFile(path_, &file_);
  if (!s.ok()) {
    return s;
  }
  writer_ = std::make_unique<log::Writer>(file_.get(), size);
  return Status::OK();
}

uint64_t TxnLog::NextGsn() {
  MutexLock lock(&mu_);
  return ++max_gsn_;
}

Status TxnLog::Append(uint8_t tag, uint64_t gsn, bool sync) {
  MutexLock lock(&mu_);
  std::string record;
  record.push_back(static_cast<char>(tag));
  PutVarint64(&record, gsn);
  // Retried at step granularity: AddRecord is safe to re-issue after a
  // transient fault (one atomic append per physical record), and retrying the
  // whole append+sync pair would duplicate the record when only the sync
  // failed. Recovery tolerates duplicates anyway (set inserts), but there is
  // no reason to write them.
  Status s = RunWithRetry(env_, retry_, [&] { return writer_->AddRecord(record); });
  if (s.ok() && sync) {
    s = RunWithRetry(env_, retry_, [&] { return writer_->Sync(); });
  }
  if (s.ok() && tag == kTxnCommit) {
    if (gsn > watermark_) {
      committed_tail_.insert(gsn);
      AdvanceWatermark();
    }
  }
  return s;
}

Status TxnLog::LogBegin(uint64_t gsn) { return Append(kTxnBegin, gsn, /*sync=*/true); }

Status TxnLog::LogCommit(uint64_t gsn) { return Append(kTxnCommit, gsn, /*sync=*/true); }

void TxnLog::MarkAborted(uint64_t gsn) {
  if (gsn == 0) {
    return;
  }
  MutexLock lock(&mu_);
  if (gsn <= watermark_ || committed_tail_.count(gsn) > 0) {
    return;  // already resolved
  }
  aborted_.insert(gsn);
  AdvanceWatermark();
}

void TxnLog::AdvanceWatermark() {
  // A GSN above the watermark is resolved if it committed (tail entry) or
  // aborted (exception entry). Committed entries are folded into the
  // watermark and dropped; aborted entries must outlive the fold — they are
  // what distinguishes "below watermark" from "committed".
  while (true) {
    const uint64_t next = watermark_ + 1;
    if (committed_tail_.count(next) > 0) {
      committed_tail_.erase(next);
    } else if (aborted_.count(next) == 0) {
      break;
    }
    watermark_ = next;
  }
}

bool TxnLog::IsCommitted(uint64_t gsn) const {
  if (gsn == 0) {
    return true;
  }
  MutexLock lock(&mu_);
  if (gsn <= watermark_) {
    return aborted_.count(gsn) == 0;
  }
  return committed_tail_.count(gsn) > 0;
}

uint64_t TxnLog::CommittedWatermark() const {
  MutexLock lock(&mu_);
  return watermark_;
}

size_t TxnLog::CommittedFootprint() const {
  MutexLock lock(&mu_);
  return committed_tail_.size() + aborted_.size();
}

}  // namespace p2kvs
