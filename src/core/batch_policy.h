// BatchPolicy: the pluggable vertical-batching layer of the submission
// pipeline. The worker pops one request and hands it to the policy, which
// decides how many more requests to take from the queue and execute together
// (the opportunistic batching mechanism, paper Algorithm 1, is the default
// policy). Policies never block: batching is purely opportunistic over what
// is already queued (§4.3).
//
// Portability adapters without batch APIs (§4.6) get the pass-through policy
// instead of per-iteration branching in the worker loop.

#ifndef P2KVS_SRC_CORE_BATCH_POLICY_H_
#define P2KVS_SRC_CORE_BATCH_POLICY_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/kv_store.h"
#include "src/core/request.h"

namespace p2kvs {

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  virtual const char* name() const = 0;

  // Called by the worker with the request it just dequeued. Appends `first`
  // plus any requests the policy opportunistically takes from `queue` to
  // `group` (cleared by the caller). Must never block or wait for more
  // requests to arrive, and must preserve queue order within the group.
  virtual void Collect(Request* first, RequestQueue* queue,
                       std::vector<Request*>* group) = 0;
};

// Paper Algorithm 1: greedily merge the run of consecutive same-type
// requests at the queue front, up to max_batch_size. Writes merge only when
// the engine has an atomic batch-write and the request carries no GSN
// (transaction sub-batches commit alone, §4.5); reads always merge — even
// without a native multiget the single engine call amortizes queue churn.
std::unique_ptr<BatchPolicy> MakeGreedySameTypeBatchPolicy(const EngineCaps& caps,
                                                           int max_batch_size);

// Every request executes alone. Used when the OBM is disabled and for
// engines with no batch APIs at all (the WTLite profile, §4.6).
std::unique_ptr<BatchPolicy> MakePassThroughBatchPolicy();

// Default selection from the engine's capabilities.
std::unique_ptr<BatchPolicy> MakeBatchPolicyFromCaps(const EngineCaps& caps,
                                                     bool enable_obm,
                                                     int max_batch_size);

// Pluggable hook (P2kvsOptions::batch_policy_factory / Worker::Config).
using BatchPolicyFactory = std::function<std::unique_ptr<BatchPolicy>(
    const EngineCaps& caps, bool enable_obm, int max_batch_size)>;

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_BATCH_POLICY_H_
