// Request: the unit that flows from user threads through the accessing layer
// into a worker's queue (paper Figure 9b). A request is an intrusive node of
// the lock-free submission queue and completes through exactly one of three
// doors, all sharing one code path:
//
//   sync     — the caller parks on the request's embedded Completion
//              (sync = async + wait; no per-request mutex/condvar);
//   async    — a callback runs on the worker thread (§4.1's asynchronous
//              write interface) and the heap request self-deletes;
//   fan-out  — the request joins a shared countdown Completion covering a
//              whole MultiGet / MultiWrite / parallel RANGE / WriteTxn.

#ifndef P2KVS_SRC_CORE_REQUEST_H_
#define P2KVS_SRC_CORE_REQUEST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/completion.h"
#include "src/lsm/write_batch.h"
#include "src/util/intrusive_mpsc_queue.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

struct WorkerStatsSnapshot;

enum class RequestType : uint8_t {
  kPut,
  kDelete,
  kGet,
  kScan,        // begin key + count
  kRange,       // begin key + end key
  kWriteBatch,  // pre-built sub-batch of a GSN transaction or a MultiWrite
  kEndTxn,      // release the read-committed snapshot of a finished txn
  kMultiGet,    // pre-merged per-partition slice of a client-side MultiGet
  kBarrier,     // completes once every request queued before it has drained
  kStats,       // drain request: the worker thread snapshots its own recorder
                // into stats_out (race-free aggregation, no seqlock)
};

inline bool IsWriteType(RequestType t) {
  return t == RequestType::kPut || t == RequestType::kDelete || t == RequestType::kWriteBatch;
}

inline bool IsReadType(RequestType t) { return t == RequestType::kGet; }

// Internal bookkeeping types: never shed, never deadlined, never counted in
// the submitted/completed/shed/expired accounting (they are not client work).
inline bool IsControlType(RequestType t) {
  return t == RequestType::kBarrier || t == RequestType::kStats;
}

// Admission class. kCritical requests bypass the admission controller: the
// accessing layer marks control/drain/barrier requests and fan-out slices
// whose whole group was already admitted atomically at P2KVS level (a group
// must shed all-or-nothing, never member-by-member, or the pooled join
// Completion would report a torn result).
enum class RequestPriority : uint8_t {
  kNormal = 0,
  kCritical = 1,
};

struct Request : MpscQueueNode {
  RequestType type = RequestType::kPut;
  RequestPriority priority = RequestPriority::kNormal;

  // Owned copies: async submitters return to the caller before processing.
  std::string key;
  std::string value;  // kPut payload; kRange end key

  // kWriteBatch:
  WriteBatch* batch = nullptr;
  uint64_t gsn = 0;

  // kGet output.
  std::string* get_out = nullptr;

  // kScan / kRange output.
  size_t scan_count = 0;
  std::vector<std::pair<std::string, std::string>>* scan_out = nullptr;

  // kMultiGet: this request carries the subset of a user MultiGet that
  // routes to one partition. mget_index holds the original key positions;
  // the pointed-to arrays belong to the caller, which outlives the join.
  const std::vector<Slice>* mget_keys = nullptr;
  std::vector<std::string>* mget_values = nullptr;
  std::vector<Status>* mget_statuses = nullptr;
  std::vector<uint32_t> mget_index;

  // kStats output: filled by the worker thread before completion; the join
  // Completion's release/acquire publishes it to the aggregating thread.
  WorkerStatsSnapshot* stats_out = nullptr;

  // Stamped by Worker::Submit (when stats are enabled) just before the queue
  // push; the push's release store publishes it with the node. Feeds the
  // queue-wait and end-to-end stages.
  uint64_t submit_nanos = 0;

  // Absolute steady-clock deadline in nanoseconds (0 = none). Stamped by the
  // accessing layer from Options::default_deadline_ms before Submit; checked
  // by the worker at dequeue and again before engine execute, and bounds the
  // transient-retry loop. Published with the node like submit_nanos.
  uint64_t deadline_nanos = 0;

  // Trace identity, assigned by the sampling decision in Worker::Submit
  // (0 = unsampled). Published with the node the same way as submit_nanos;
  // every pipeline hop of a sampled request emits a TraceEvent keyed on it.
  uint64_t trace_id = 0;

  Status status;

  // Async completion: non-null callback means nobody Wait()s.
  std::function<void(const Status&)> callback;

  // Fan-out join: when set, completion is reported to the shared group
  // instead of the embedded done_ event.
  Completion* group = nullptr;

  void Complete(const Status& s) {
    status = s;
    if (callback) {
      callback(s);
      delete this;  // async requests are heap-allocated and self-owned
      return;
    }
    if (group != nullptr) {
      group->Finish(s);  // may release the waiter; this is the last touch
      return;
    }
    done_.Finish(s);
  }

  Status Wait() { return done_.Wait(); }

 private:
  Completion done_{1};
};

// The lock-free per-worker submission queue (accessing layer, §4.1).
using RequestQueue = IntrusiveMpscQueue<Request>;

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_REQUEST_H_
