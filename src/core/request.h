// Request: the unit that flows from user threads through the accessing layer
// into a worker's queue (paper Figure 9b). Sync requests block the caller on
// an embedded completion; async requests carry a callback instead (the
// asynchronous write interface of §4.1).

#ifndef P2KVS_SRC_CORE_REQUEST_H_
#define P2KVS_SRC_CORE_REQUEST_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/lsm/write_batch.h"
#include "src/util/status.h"

namespace p2kvs {

enum class RequestType : uint8_t {
  kPut,
  kDelete,
  kGet,
  kScan,        // begin key + count
  kRange,       // begin key + end key
  kWriteBatch,  // pre-built sub-batch of a GSN transaction
  kEndTxn,      // release the read-committed snapshot of a finished txn
};

inline bool IsWriteType(RequestType t) {
  return t == RequestType::kPut || t == RequestType::kDelete || t == RequestType::kWriteBatch;
}

inline bool IsReadType(RequestType t) { return t == RequestType::kGet; }

struct Request {
  RequestType type;

  // Owned copies: async submitters return to the caller before processing.
  std::string key;
  std::string value;  // kPut payload; kRange end key

  // kWriteBatch:
  WriteBatch* batch = nullptr;
  uint64_t gsn = 0;

  // kGet output.
  std::string* get_out = nullptr;

  // kScan / kRange output.
  size_t scan_count = 0;
  std::vector<std::pair<std::string, std::string>>* scan_out = nullptr;

  Status status;

  // Async completion: non-null callback means nobody Wait()s.
  std::function<void(const Status&)> callback;

  void Complete(const Status& s) {
    if (callback) {
      callback(s);
      delete this;  // async requests are heap-allocated and self-owned
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    status = s;
    done_ = true;
    cv_.notify_one();
  }

  Status Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return status;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_REQUEST_H_
