#include "src/core/p2kvs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>

#include "src/core/completion.h"
#include "src/core/worker.h"
#include "src/io/io_stats.h"
#include "src/lsm/merging_iterator.h"
#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/resource_usage.h"

namespace p2kvs {

P2KVS::P2KVS(const P2kvsOptions& options, std::string path)
    : options_(options), path_(std::move(path)) {
  if (!options_.engine_factory) {
    options_.engine_factory = MakeRocksLiteFactory();
  }
  if (!options_.partitioner) {
    options_.partitioner = MakeHashPartitioner();
  }
  if (options_.num_workers < 1) {
    options_.num_workers = 1;
  }
}

P2KVS::~P2KVS() {
  if (telemetry_thread_.joinable()) {
    {
      MutexLock lock(&telemetry_mu_);
      telemetry_stop_ = true;
    }
    telemetry_cv_.SignalAll();
    telemetry_thread_.join();
  }
  for (auto& worker : workers_) {
    worker->Stop();
  }
}

Status P2KVS::Open(const P2kvsOptions& options, const std::string& path,
                   std::unique_ptr<P2KVS>* store) {
  store->reset();
  auto impl = std::unique_ptr<P2KVS>(new P2KVS(options, path));
  Status s = impl->Init();
  if (!s.ok()) {
    return s;
  }
  *store = std::move(impl);
  return Status::OK();
}

Status P2KVS::Init() {
  // CreateDir tolerates an existing directory, so any failure here is real
  // (permissions, missing parent) and every instance open below would fail
  // with a less direct message.
  Status dir_status = options_.env->CreateDir(path_);
  if (!dir_status.ok()) {
    return dir_status;
  }

  // Recover the transaction log first: WAL replay in every instance filters
  // on the committed-GSN set (paper Figure 11).
  Status s = TxnLog::Open(options_.env, path_ + "/TXNLOG", &txn_log_, options_.retry);
  if (!s.ok()) {
    return s;
  }
  TxnLog* txn_log = txn_log_.get();
  auto recovery_filter = [txn_log](uint64_t gsn) { return txn_log->IsCommitted(gsn); };

  if (options_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(options_.trace, options_.num_workers);
  }

  for (int i = 0; i < options_.num_workers; i++) {
    std::unique_ptr<KVStore> instance;
    s = options_.engine_factory(path_ + "/instance-" + std::to_string(i), recovery_filter,
                                &instance);
    if (!s.ok()) {
      return s;
    }
    Worker::Config config;
    config.id = i;
    config.pin_to_cpu = options_.pin_workers;
    config.enable_obm = options_.enable_obm;
    config.max_batch_size = options_.max_batch_size;
    config.queue_capacity = options_.queue_capacity;
    config.batch_policy_factory = options_.batch_policy_factory;
    config.txn_read_committed = options_.txn_read_committed;
    config.env = options_.env;
    config.retry = options_.retry;
    config.auto_resume_interval_us = options_.auto_resume_interval_us;
    config.max_auto_resume_failures = options_.max_auto_resume_failures;
    config.enable_stats = options_.enable_stats;
    config.hot_key_sketch_k = options_.hot_key_sketch_k;
    config.listener = options_.listener.get();
    config.tracer = tracer_.get();
    config.admission = options_.admission;
    config.admission_factory = options_.admission_factory;
    config.retry_budget_per_sec = options_.retry_budget_per_sec;
    config.retry_budget_burst = options_.retry_budget_burst;
    config.breaker_failure_threshold = options_.breaker_failure_threshold;
    config.breaker_window_ms = options_.breaker_window_ms;
    workers_.push_back(std::make_unique<Worker>(config, std::move(instance)));
  }
  for (auto& worker : workers_) {
    worker->Start();
  }
  if (options_.metrics_window_ms > 0 || options_.stats_dump_period_ms > 0) {
    registry_ = std::make_unique<obs::MetricsRegistry>(options_.metrics_window_count);
    telemetry_thread_ = std::thread([this] { TelemetryLoop(); });
  }
  return Status::OK();
}

void P2KVS::TelemetryLoop() {
  // One loop, one kStats drain per tick, three consumers: the metrics window
  // ring, the per-window SelfCheck, and the periodic OnStatsDump report at
  // its own (coarser or equal) cadence. The tick is the metrics window when
  // windowing is on, else the dump period.
  const int tick_ms = options_.metrics_window_ms > 0 ? options_.metrics_window_ms
                                                     : options_.stats_dump_period_ms;
  const auto period = std::chrono::milliseconds(tick_ms);
  CpuUsageSampler cpu;
  int since_dump_ms = 0;
  telemetry_mu_.Lock();
  while (!telemetry_stop_) {
    // Timed wait with a deadline so spurious wakeups re-wait the remainder
    // instead of restarting the full period.
    const auto deadline = std::chrono::steady_clock::now() + period;
    while (!telemetry_stop_ && std::chrono::steady_clock::now() < deadline) {
      telemetry_cv_.WaitUntil(deadline);
    }
    if (telemetry_stop_) {
      break;
    }
    telemetry_mu_.Unlock();

    P2kvsStats stats = GetStats();
    obs::TelemetrySample sample;
    sample.wall_nanos = obs::ObsClockNanos();  // drain thread, never a worker
    sample.totals = stats.totals;
    sample.workers = stats.workers;
    sample.process_cpu_percent = cpu.SampleUtilizationPercent();
    sample.process_rss_bytes = CurrentRssBytes();
    sample.trace_enabled = stats.trace_enabled;
    sample.trace_events = stats.trace_events;
    sample.trace_dropped = stats.trace_dropped;
    registry_->AddSample(sample);
    if (!stats.SelfCheck().ok()) {
      registry_->CountSelfCheckFailure();
    }

    if (options_.stats_dump_period_ms > 0) {
      since_dump_ms += tick_ms;
      if (since_dump_ms >= options_.stats_dump_period_ms) {
        since_dump_ms = 0;
        std::string json = stats.ToJson();
        if (options_.listener != nullptr) {
          options_.listener->OnStatsDump(json);
        } else {
          std::fprintf(stderr, "%s\n", json.c_str());
        }
      }
    }
    telemetry_mu_.Lock();
  }
  telemetry_mu_.Unlock();
}

uint64_t P2KVS::DeadlineFromOptions() const {
  if (options_.default_deadline_ms <= 0) {
    return 0;
  }
  return NowNanos() + static_cast<uint64_t>(options_.default_deadline_ms) * 1000000ull;
}

int P2KVS::ProbeFanoutAdmission(const std::vector<size_t>& involved) {
  for (size_t w : involved) {
    if (!workers_[w]->ProbeAdmission()) {
      // All-or-nothing: the whole operation is refused, and every involved
      // partition records one shed so the accounting matches what the client
      // observed (one refusal per slice that would have been submitted).
      for (size_t v : involved) {
        workers_[v]->CountFanoutShed();
      }
      return static_cast<int>(w);
    }
  }
  return -1;
}

int P2KVS::PartitionOf(const Slice& key) const {
  // Balanced request allocation (§4.2); default: worker = Hash(key) % N.
  return options_.partitioner(key, static_cast<int>(workers_.size()));
}

KVStore* P2KVS::instance(int i) { return workers_[static_cast<size_t>(i)]->store(); }

Status P2KVS::Put(const Slice& key, const Slice& value) {
  Request request;
  request.type = RequestType::kPut;
  request.key = key.ToString();
  request.value = value.ToString();
  request.deadline_nanos = DeadlineFromOptions();
  workers_[static_cast<size_t>(PartitionOf(key))]->Submit(&request);
  return request.Wait();
}

Status P2KVS::Delete(const Slice& key) {
  Request request;
  request.type = RequestType::kDelete;
  request.key = key.ToString();
  request.deadline_nanos = DeadlineFromOptions();
  workers_[static_cast<size_t>(PartitionOf(key))]->Submit(&request);
  return request.Wait();
}

Status P2KVS::Get(const Slice& key, std::string* value) {
  Request request;
  request.type = RequestType::kGet;
  request.key = key.ToString();
  request.get_out = value;
  request.deadline_nanos = DeadlineFromOptions();
  workers_[static_cast<size_t>(PartitionOf(key))]->Submit(&request);
  return request.Wait();
}

void P2KVS::PutAsync(const Slice& key, const Slice& value,
                     std::function<void(const Status&)> cb) {
  auto* request = new Request();
  request->type = RequestType::kPut;
  request->key = key.ToString();
  request->value = value.ToString();
  request->callback = std::move(cb);
  request->deadline_nanos = DeadlineFromOptions();
  workers_[static_cast<size_t>(PartitionOf(key))]->SubmitShedOnFull(request);
}

void P2KVS::DeleteAsync(const Slice& key, std::function<void(const Status&)> cb) {
  auto* request = new Request();
  request->type = RequestType::kDelete;
  request->key = key.ToString();
  request->callback = std::move(cb);
  request->deadline_nanos = DeadlineFromOptions();
  workers_[static_cast<size_t>(PartitionOf(key))]->SubmitShedOnFull(request);
}

void P2KVS::GetAsync(const Slice& key,
                     std::function<void(const Status&, std::string value)> cb) {
  // The value needs storage that outlives this call; park it next to the
  // user callback and hand both to the request's completion callback.
  struct GetCtx {
    std::string value;
    std::function<void(const Status&, std::string)> cb;
  };
  auto* ctx = new GetCtx{std::string(), std::move(cb)};
  auto* request = new Request();
  request->type = RequestType::kGet;
  request->key = key.ToString();
  request->get_out = &ctx->value;
  request->deadline_nanos = DeadlineFromOptions();
  request->callback = [ctx](const Status& s) {
    ctx->cb(s, std::move(ctx->value));
    delete ctx;
  };
  workers_[static_cast<size_t>(PartitionOf(key))]->SubmitShedOnFull(request);
}

void P2KVS::MultiGetAsync(
    std::vector<std::string> keys,
    std::function<void(std::vector<Status>, std::vector<std::string>)> cb) {
  // Heap context instead of the sync path's stack + join.Wait(): every slice
  // completes through its own callback, and the LAST one to count down
  // harvests and reports. The release/acquire pair on `remaining` publishes
  // every sibling slice's writes to the harvesting thread.
  struct MgetCtx {
    std::vector<std::string> owned_keys;
    std::vector<Slice> keys;  // views into owned_keys, what workers consume
    std::vector<std::string> values;
    std::vector<Status> statuses;
    std::function<void(std::vector<Status>, std::vector<std::string>)> cb;
    std::atomic<uint32_t> remaining{0};
  };
  auto* ctx = new MgetCtx();
  ctx->owned_keys = std::move(keys);
  ctx->cb = std::move(cb);
  ctx->keys.reserve(ctx->owned_keys.size());
  for (const std::string& k : ctx->owned_keys) {
    ctx->keys.emplace_back(k);
  }
  ctx->values.assign(ctx->keys.size(), std::string());
  ctx->statuses.assign(ctx->keys.size(), Status::Aborted("multiget not executed"));
  if (ctx->keys.empty()) {
    ctx->cb(std::move(ctx->statuses), std::move(ctx->values));
    delete ctx;
    return;
  }

  std::vector<std::vector<uint32_t>> index_of(workers_.size());
  std::vector<size_t> involved;
  for (uint32_t i = 0; i < ctx->keys.size(); i++) {
    const auto w = static_cast<size_t>(PartitionOf(ctx->keys[i]));
    if (index_of[w].empty()) {
      involved.push_back(w);
    }
    index_of[w].push_back(i);
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    ctx->statuses.assign(ctx->keys.size(), MakeShedStatus(refused));
    ctx->cb(std::move(ctx->statuses), std::move(ctx->values));
    delete ctx;
    return;
  }
  const uint64_t deadline = DeadlineFromOptions();

  // Arm the full count before submitting anything: a slice that completes
  // inline must not observe zero early.
  ctx->remaining.store(static_cast<uint32_t>(involved.size()), std::memory_order_relaxed);
  for (size_t w : involved) {
    auto* request = new Request();
    request->type = RequestType::kMultiGet;
    request->mget_keys = &ctx->keys;
    request->mget_values = &ctx->values;
    request->mget_statuses = &ctx->statuses;
    request->mget_index = std::move(index_of[w]);
    request->priority = RequestPriority::kCritical;  // admitted above
    request->deadline_nanos = deadline;
    request->callback = [ctx](const Status&) {
      // Slice-level status is scattered per key already; the group request's
      // own status carries nothing (mirrors the sync path).
      if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ctx->cb(std::move(ctx->statuses), std::move(ctx->values));
        delete ctx;
      }
    };
    // Never parks: a full partition queue sheds its slice (those keys report
    // Busy) while sibling slices proceed — the async contract beats the
    // fan-out's all-or-nothing preference, which only the probe above (and
    // the sync MultiGet, which may park) can guarantee.
    workers_[w]->SubmitShedOnFull(request);
  }
}

void P2KVS::MultiWriteAsync(WriteBatch updates, std::function<void(const Status&)> cb) {
  struct MwriteCtx {
    std::vector<WriteBatch> parts;
    std::function<void(const Status&)> cb;
    std::atomic<uint32_t> remaining{0};
    // First non-OK slice outcome; the CAS winner writes before its countdown
    // release, the harvester reads after its acquire.
    std::atomic<bool> failed{false};
    Status first_error;
  };
  auto* ctx = new MwriteCtx();
  ctx->cb = std::move(cb);
  Status s = SplitByPartition(&updates, &ctx->parts);
  if (!s.ok()) {
    ctx->cb(s);
    delete ctx;
    return;
  }
  std::vector<size_t> involved;
  for (size_t w = 0; w < workers_.size(); w++) {
    if (ctx->parts[w].Count() != 0) {
      involved.push_back(w);
    }
  }
  if (involved.empty()) {
    ctx->cb(Status::OK());
    delete ctx;
    return;
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    ctx->cb(MakeShedStatus(refused));
    delete ctx;
    return;
  }
  const uint64_t deadline = DeadlineFromOptions();
  ctx->remaining.store(static_cast<uint32_t>(involved.size()), std::memory_order_relaxed);
  for (size_t w : involved) {
    auto* request = new Request();
    request->type = RequestType::kWriteBatch;
    request->batch = &ctx->parts[w];
    request->priority = RequestPriority::kCritical;  // admitted above
    request->deadline_nanos = deadline;
    request->callback = [ctx](const Status& slice_status) {
      if (!slice_status.ok()) {
        bool expected = false;
        if (ctx->failed.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
          ctx->first_error = slice_status;
        }
      }
      if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ctx->cb(ctx->failed.load(std::memory_order_acquire) ? ctx->first_error
                                                            : Status::OK());
        delete ctx;
      }
    };
    // Never parks; a shed slice surfaces as the group's Busy first_error
    // (atomic per partition only, like every other slice failure).
    workers_[w]->SubmitShedOnFull(request);
  }
}

void P2KVS::ScanAsync(
    const Slice& begin, size_t count,
    std::function<void(const Status&, std::vector<std::pair<std::string, std::string>>)>
        cb) {
  struct ScanCtx {
    std::vector<std::vector<std::pair<std::string, std::string>>> partials;
    std::vector<Status> statuses;
    std::function<void(const Status&, std::vector<std::pair<std::string, std::string>>)>
        cb;
    std::atomic<uint32_t> remaining{0};
    size_t count = 0;
  };
  auto* ctx = new ScanCtx();
  ctx->partials.assign(workers_.size(), {});
  ctx->statuses.assign(workers_.size(), Status::OK());
  ctx->cb = std::move(cb);
  ctx->count = count;

  std::vector<size_t> involved(workers_.size());
  for (size_t i = 0; i < workers_.size(); i++) {
    involved[i] = i;
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    ctx->cb(MakeShedStatus(refused), {});
    delete ctx;
    return;
  }
  const uint64_t deadline = DeadlineFromOptions();
  ctx->remaining.store(static_cast<uint32_t>(workers_.size()), std::memory_order_relaxed);
  for (size_t i = 0; i < workers_.size(); i++) {
    auto* request = new Request();
    request->type = RequestType::kScan;
    request->key = begin.ToString();
    request->scan_count = count;
    request->scan_out = &ctx->partials[i];
    request->priority = RequestPriority::kCritical;  // admitted above
    request->deadline_nanos = deadline;
    request->callback = [ctx, i](const Status& slice_status) {
      // Each slice owns its statuses slot; publication rides the countdown.
      ctx->statuses[i] = slice_status;
      if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Merge exactly like the sync parallel Scan: healthy partitions'
        // pairs survive, first error is reported.
        std::vector<std::pair<std::string, std::string>> out;
        Status first_error;
        for (size_t w = 0; w < ctx->partials.size(); w++) {
          if (ctx->statuses[w].ok()) {
            out.insert(out.end(), std::make_move_iterator(ctx->partials[w].begin()),
                       std::make_move_iterator(ctx->partials[w].end()));
          } else if (first_error.ok()) {
            first_error = ctx->statuses[w];
          }
        }
        std::sort(out.begin(), out.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        if (out.size() > ctx->count) {
          out.resize(ctx->count);
        }
        ctx->cb(first_error, std::move(out));
        delete ctx;
      }
    };
    // Never parks; a shed slice reports Busy like any per-partition failure.
    workers_[i]->SubmitShedOnFull(request);
  }
}

std::vector<Status> P2KVS::MultiGet(const std::vector<Slice>& keys,
                                    std::vector<std::string>* values) {
  values->assign(keys.size(), std::string());
  // Overwritten per key by the owning partition; only an aborted fan-out
  // (worker stopped mid-join) leaves this behind.
  std::vector<Status> statuses(keys.size(), Status::Aborted("multiget not executed"));
  if (keys.empty()) {
    return statuses;
  }

  // Split positions per partition (duplicate keys simply occupy several
  // positions of the owning partition's index list).
  std::vector<std::vector<uint32_t>> index_of(workers_.size());
  std::vector<size_t> involved;
  for (uint32_t i = 0; i < keys.size(); i++) {
    const auto w = static_cast<size_t>(PartitionOf(keys[i]));
    if (index_of[w].empty()) {
      involved.push_back(w);
    }
    index_of[w].push_back(i);
  }

  // Atomic fan-out admission: the whole MultiGet is admitted or shed as a
  // unit, before the join is armed — a refusal submits nothing.
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    statuses.assign(keys.size(), MakeShedStatus(refused));
    return statuses;
  }
  const uint64_t deadline = DeadlineFromOptions();

  Completion join;
  std::deque<std::pair<size_t, Request>> requests;  // worker -> group request
  for (size_t w = 0; w < workers_.size(); w++) {
    if (index_of[w].empty()) {
      continue;
    }
    auto& [worker, request] = requests.emplace_back();
    worker = w;
    request.type = RequestType::kMultiGet;
    request.mget_keys = &keys;
    request.mget_values = values;
    request.mget_statuses = &statuses;
    request.mget_index = std::move(index_of[w]);
    request.group = &join;
    // Already admitted above; kCritical stops the per-worker probe from
    // shedding one slice of an operation the fan-out probe accepted.
    request.priority = RequestPriority::kCritical;
    request.deadline_nanos = deadline;
    join.Add(1);
  }
  for (auto& [worker, request] : requests) {
    workers_[worker]->Submit(&request);
  }
  // Per-key outcomes are harvested from statuses[] below; the group status
  // would only repeat the first of them.
  join.Wait().IgnoreError();
  return statuses;
}

Status P2KVS::SplitByPartition(WriteBatch* updates, std::vector<WriteBatch>* parts) const {
  struct Splitter : public WriteBatch::Handler {
    const P2KVS* store;
    std::vector<WriteBatch>* parts;

    void Put(const Slice& key, const Slice& value) override {
      (*parts)[static_cast<size_t>(store->PartitionOf(key))].Put(key, value);
    }
    void Delete(const Slice& key) override {
      (*parts)[static_cast<size_t>(store->PartitionOf(key))].Delete(key);
    }
  };
  parts->assign(workers_.size(), WriteBatch());
  Splitter splitter;
  splitter.store = this;
  splitter.parts = parts;
  return updates->Iterate(&splitter);
}

Status P2KVS::MultiWrite(WriteBatch* updates) {
  std::vector<WriteBatch> parts;
  Status s = SplitByPartition(updates, &parts);
  if (!s.ok()) {
    return s;
  }

  // Non-txn fan-out: GSN-free sub-batches, so each worker's BatchPolicy may
  // fold them into even larger engine writes. Atomic per partition only.
  std::vector<size_t> involved;
  for (size_t w = 0; w < workers_.size(); w++) {
    if (parts[w].Count() != 0) {
      involved.push_back(w);
    }
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    return MakeShedStatus(refused);
  }
  const uint64_t deadline = DeadlineFromOptions();

  Completion join;
  std::deque<std::pair<size_t, Request>> requests;
  for (size_t w : involved) {
    auto& [worker, request] = requests.emplace_back();
    worker = w;
    request.type = RequestType::kWriteBatch;
    request.batch = &parts[w];
    request.group = &join;
    request.priority = RequestPriority::kCritical;  // admitted above
    request.deadline_nanos = deadline;
    join.Add(1);
  }
  for (auto& [worker, request] : requests) {
    workers_[worker]->Submit(&request);
  }
  return join.Wait();
}

Status P2KVS::Range(const Slice& begin, const Slice& end,
                    std::vector<std::pair<std::string, std::string>>* out,
                    std::vector<Status>* partition_status) {
  // A RANGE forks into per-instance sub-RANGEs executed in parallel, at no
  // extra read cost: partitions are disjoint (§4.4). All sub-requests join
  // on one countdown completion. Failures are per partition, like MultiGet's
  // per-key outcomes: the healthy partitions' pairs are always returned, so a
  // single faulty instance degrades the result instead of erasing it.
  std::vector<size_t> involved(workers_.size());
  for (size_t i = 0; i < workers_.size(); i++) {
    involved[i] = i;
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    const Status s = MakeShedStatus(refused);
    if (partition_status != nullptr) {
      partition_status->assign(workers_.size(), s);
    }
    out->clear();
    return s;
  }
  const uint64_t deadline = DeadlineFromOptions();
  Completion join(static_cast<uint32_t>(workers_.size()));
  std::deque<Request> requests;
  std::vector<std::vector<std::pair<std::string, std::string>>> partials(workers_.size());
  for (size_t i = 0; i < workers_.size(); i++) {
    Request& request = requests.emplace_back();
    request.type = RequestType::kRange;
    request.key = begin.ToString();
    request.value = end.ToString();
    request.scan_out = &partials[i];
    request.group = &join;
    request.priority = RequestPriority::kCritical;  // admitted above
    request.deadline_nanos = deadline;
    workers_[i]->Submit(&request);
  }
  // Post-join, each request's own status is stable (Completion's
  // release/acquire ordering) — per-partition outcomes are harvested below,
  // so the group-level first-error is redundant here.
  join.Wait().IgnoreError();
  Status first_error;
  if (partition_status != nullptr) {
    partition_status->clear();
    partition_status->reserve(workers_.size());
  }
  out->clear();
  for (size_t i = 0; i < workers_.size(); i++) {
    const Status& s = requests[i].status;
    if (partition_status != nullptr) {
      partition_status->push_back(s);
    }
    if (s.ok()) {
      out->insert(out->end(), std::make_move_iterator(partials[i].begin()),
                  std::make_move_iterator(partials[i].end()));
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return first_error;
}

Status P2KVS::Scan(const Slice& begin, size_t count,
                   std::vector<std::pair<std::string, std::string>>* out,
                   std::vector<Status>* partition_status) {
  out->clear();
  if (partition_status != nullptr) {
    partition_status->clear();
  }
  if (options_.scan_mode == P2kvsOptions::ScanMode::kGlobalMerge) {
    // Conservative strategy: one serial merge iterator over all instances.
    std::unique_ptr<Iterator> iter(NewGlobalIterator());
    if (begin.empty()) {
      iter->SeekToFirst();
    } else {
      iter->Seek(begin);
    }
    while (iter->Valid() && out->size() < count) {
      out->emplace_back(iter->key().ToString(), iter->value().ToString());
      iter->Next();
    }
    // The serial merge has no per-partition result granularity: every
    // partition shares the global iterator's outcome.
    if (partition_status != nullptr) {
      partition_status->assign(workers_.size(), iter->status());
    }
    return iter->status();
  }

  // Parallel strategy: over-scan `count` keys on every instance, then merge
  // and truncate. Extra reads, but each sub-scan runs on its own worker.
  // Per-partition failure handling mirrors Range: successful partitions'
  // pairs survive, the first error is returned (note the merged result may
  // then be missing keys the failed partition owned).
  std::vector<size_t> involved(workers_.size());
  for (size_t i = 0; i < workers_.size(); i++) {
    involved[i] = i;
  }
  const int refused = ProbeFanoutAdmission(involved);
  if (refused >= 0) {
    const Status s = MakeShedStatus(refused);
    if (partition_status != nullptr) {
      partition_status->assign(workers_.size(), s);
    }
    return s;
  }
  const uint64_t deadline = DeadlineFromOptions();
  Completion join(static_cast<uint32_t>(workers_.size()));
  std::deque<Request> requests;
  std::vector<std::vector<std::pair<std::string, std::string>>> partials(workers_.size());
  for (size_t i = 0; i < workers_.size(); i++) {
    Request& request = requests.emplace_back();
    request.type = RequestType::kScan;
    request.key = begin.ToString();
    request.scan_count = count;
    request.scan_out = &partials[i];
    request.group = &join;
    request.priority = RequestPriority::kCritical;  // admitted above
    request.deadline_nanos = deadline;
    workers_[i]->Submit(&request);
  }
  // Per-partition outcomes are harvested below; the group status would only
  // repeat the first of them.
  join.Wait().IgnoreError();
  Status first_error;
  for (size_t i = 0; i < workers_.size(); i++) {
    const Status& s = requests[i].status;
    if (partition_status != nullptr) {
      partition_status->push_back(s);
    }
    if (s.ok()) {
      out->insert(out->end(), std::make_move_iterator(partials[i].begin()),
                  std::make_move_iterator(partials[i].end()));
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (out->size() > count) {
    out->resize(count);
  }
  return first_error;
}

Iterator* P2KVS::NewGlobalIterator() {
  std::vector<Iterator*> children;
  children.reserve(workers_.size());
  for (auto& worker : workers_) {
    children.push_back(worker->store()->NewIterator());
  }
  return NewMergingIterator(BytewiseComparator(), children.data(),
                            static_cast<int>(children.size()));
}

Status P2KVS::WriteTxn(WriteBatch* updates) {
  // Split the batch by partition; all sub-batches carry one GSN.
  std::vector<WriteBatch> parts;
  Status s = SplitByPartition(updates, &parts);
  if (!s.ok()) {
    return s;
  }

  // Verify every involved engine can tag its WAL before logging anything.
  for (size_t i = 0; i < workers_.size(); i++) {
    if (parts[i].Count() > 0 && !workers_[i]->store()->caps().gsn_wal) {
      return Status::NotSupported("engine lacks GSN-tagged WAL; transactions unavailable");
    }
  }

  // Fan-out admission BEFORE a GSN is allocated or anything is logged: a
  // refused transaction leaves no trace in the txn log. Admitted sub-batches
  // run as kCritical and carry no deadline — expiring one slice of an
  // in-flight transaction would force a recovery-time rollback, a far worse
  // outcome than finishing slightly late.
  std::vector<size_t> txn_involved;
  for (size_t i = 0; i < workers_.size(); i++) {
    if (parts[i].Count() != 0) {
      txn_involved.push_back(i);
    }
  }
  const int refused = ProbeFanoutAdmission(txn_involved);
  if (refused >= 0) {
    return MakeShedStatus(refused);
  }

  const uint64_t gsn = txn_log_->NextGsn();
  s = txn_log_->LogBegin(gsn);
  if (!s.ok()) {
    // The GSN was allocated but will never commit; resolve it so the
    // committed-set watermark can advance past it.
    txn_log_->MarkAborted(gsn);
    return s;
  }

  Completion join;
  std::deque<Request> requests;
  std::vector<size_t> involved;
  for (size_t i = 0; i < workers_.size(); i++) {
    if (parts[i].Count() == 0) {
      continue;
    }
    involved.push_back(i);
    Request& request = requests.emplace_back();
    request.type = RequestType::kWriteBatch;
    request.batch = &parts[i];
    request.gsn = gsn;
    request.group = &join;
    request.priority = RequestPriority::kCritical;  // admitted above
    join.Add(1);
  }
  for (size_t r = 0; r < involved.size(); r++) {
    workers_[involved[r]]->Submit(&requests[r]);
  }
  Status result = join.Wait();

  Status commit_status;
  if (result.ok()) {
    commit_status = txn_log_->LogCommit(gsn);
  }

  if (options_.txn_read_committed) {
    // Release the pre-transaction snapshots (making the updates visible);
    // on abort the writes will be rolled back at recovery, but the snapshots
    // still must go.
    Completion end_join(static_cast<uint32_t>(involved.size()));
    std::deque<Request> end_requests;
    for (size_t i : involved) {
      Request& request = end_requests.emplace_back();
      request.type = RequestType::kEndTxn;
      request.gsn = gsn;
      request.group = &end_join;
      // Snapshot release must never be refused or expired: a shed EndTxn
      // would leak the pre-transaction snapshot until shutdown.
      request.priority = RequestPriority::kCritical;
      workers_[i]->Submit(&request);
    }
    // The commit outcome was decided above; EndTxn only releases snapshots
    // and can fail solely at shutdown, which must not flip a committed
    // transaction's result.
    end_join.Wait().IgnoreError();
  }

  if (!result.ok() || !commit_status.ok()) {
    // No commit record: recovery rolls the transaction back everywhere.
    // Resolve the GSN as aborted so the watermark is not pinned behind it.
    txn_log_->MarkAborted(gsn);
    return !result.ok() ? result : commit_status;
  }
  return commit_status;
}

Status P2KVS::FlushAll() {
  Status result;
  for (auto& worker : workers_) {
    Status s = worker->store()->Flush();
    if (!s.ok() && result.ok()) {
      result = s;
    }
  }
  return result;
}

bool P2KVS::OnOwnWorkerThread() const {
  const Worker* current = Worker::CurrentThreadWorker();
  if (current == nullptr) {
    return false;
  }
  for (const auto& worker : workers_) {
    if (worker.get() == current) {
      return true;
    }
  }
  return false;
}

Status P2KVS::WaitIdle() {
  if (OnOwnWorkerThread()) {
    // The calling worker would have to drain the very barrier it is waiting
    // on; the old behavior was a silent self-deadlock.
    return Status::InvalidArgument("WaitIdle called from a p2kvs worker thread",
                                   "would deadlock behind its own barrier request");
  }
  // First drain the accessing layer: a barrier request per worker completes
  // only after everything queued before it has executed (the queues are
  // FIFO). Only then is per-engine background quiescence meaningful.
  Completion join(static_cast<uint32_t>(workers_.size()));
  std::deque<Request> barriers;
  for (auto& worker : workers_) {
    Request& request = barriers.emplace_back();
    request.type = RequestType::kBarrier;
    request.group = &join;
    worker->SubmitControl(&request);
  }
  // A barrier aborted mid-shutdown means the queues never fully drained;
  // claiming idle would let a caller tear down state that is still in use.
  Status s = join.Wait();
  if (!s.ok()) {
    return s;
  }
  for (auto& worker : workers_) {
    worker->store()->WaitIdle();
  }
  return Status::OK();
}

P2kvsHealth P2KVS::Health() const {
  P2kvsHealth health;
  health.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerHealthInfo info;
    info.worker_id = static_cast<int>(health.workers.size());
    info.health = worker->health();
    info.degraded_rejects = worker->degraded_rejects();
    info.resume_attempts = worker->resume_attempts();
    health.workers.push_back(info);
  }
  return health;
}

Status P2KVS::Resume() {
  Status first_error;
  for (auto& worker : workers_) {
    Status s = worker->TryResume();
    if (!s.ok() && first_error.ok()) {
      first_error = s;
    }
  }
  return first_error;
}

void P2KVS::FinalizeStats(P2kvsStats* stats) const {
  stats->queue_depths.reserve(workers_.size());
  for (const WorkerStatsSnapshot& snap : stats->workers) {
    stats->totals.MergeFrom(snap);
    stats->queue_depths.push_back(snap.queue_depth);
  }
  stats->write_batches = stats->totals.write_batches;
  stats->writes_batched = stats->totals.writes_batched;
  stats->read_batches = stats->totals.read_batches;
  stats->reads_batched = stats->totals.reads_batched;
  stats->singles = stats->totals.singles;
  stats->degraded_rejects = stats->totals.degraded_rejects;
  stats->requests_submitted =
      stats->writes_batched + stats->reads_batched + stats->singles;
  stats->submitted = stats->totals.submitted;
  stats->completed = stats->totals.completed;
  stats->shed = stats->totals.shed;
  stats->expired = stats->totals.expired();
  stats->breaker_trips = stats->totals.breaker_trips;
  stats->retries_denied = stats->totals.retries_denied;
  {
    const IoStatsSnapshot io = IoStats::Instance().Snapshot();
    stats->async_submissions = io.async_submissions;
    stats->async_max_queue_depth = io.max_queue_depth;
    stats->async_reads_in_flight = io.reads_in_flight;
  }
  if (tracer_ != nullptr) {
    stats->trace_enabled = true;
    stats->trace_events = tracer_->events_appended();
    stats->trace_dropped = tracer_->events_dropped();
    stats->trace_sampled = tracer_->sampled_submitted();
    stats->trace_completed = tracer_->sampled_completed();
    stats->trace_flight_dumps = tracer_->flight_dumps();
  }
  // Skew sensing: load shares and imbalance come from the counters and work
  // with the sketch off; the global top-K needs hot_key_sketch_k > 0.
  const size_t top_k = options_.hot_key_sketch_k > 0 ? options_.hot_key_sketch_k : 16;
  stats->skew = obs::BuildSkewReport(stats->workers, top_k);
}

Status P2KVS::GetStats(P2kvsStats* stats) const {
  if (OnOwnWorkerThread()) {
    // The drain request below would sit in the calling worker's own queue,
    // behind the request whose handler is running right now — a guaranteed
    // self-deadlock (previously only documented, now refused).
    return Status::InvalidArgument("GetStats called from a p2kvs worker thread",
                                   "would deadlock behind its own drain request; "
                                   "use GetStatsAsync");
  }
  // One kStats drain request per worker: each worker THREAD copies its own
  // recorder / thread-local PerfContext / IO counters into its slot, then
  // completes; the join's release/acquire publishes every plain field here.
  // No live cross-thread reads, hence no torn totals (the bug this replaced).
  *stats = P2kvsStats();
  stats->workers.assign(workers_.size(), WorkerStatsSnapshot());
  Completion join(static_cast<uint32_t>(workers_.size()));
  std::deque<Request> requests;
  for (size_t i = 0; i < workers_.size(); i++) {
    Request& request = requests.emplace_back();
    request.type = RequestType::kStats;
    request.stats_out = &stats->workers[i];
    request.group = &join;
    workers_[i]->SubmitControl(&request);
  }
  Status s = join.Wait();
  // Finalize whatever was collected either way, but report a failed gather:
  // a stats request dropped at shutdown leaves that worker's slot zeroed,
  // which would otherwise read as a healthy idle worker.
  FinalizeStats(stats);
  return s;
}

P2kvsStats P2KVS::GetStats() const {
  P2kvsStats stats;
  // Empty stats when refused (worker-thread caller) — this convenience
  // overload has no error channel by design.
  GetStats(&stats).IgnoreError();
  return stats;
}

void P2KVS::GetStatsAsync(std::function<void(P2kvsStats)> cb) const {
  // Same drain protocol, no join: each kStats request completes through a
  // callback; the last one to count down finalizes the aggregate and hands it
  // to the user callback (on that worker's thread). Never blocks, so it is
  // legal from worker-thread context — which is exactly where the sync
  // GetStats() would deadlock.
  struct StatsCtx {
    P2kvsStats stats;
    std::function<void(P2kvsStats)> cb;
    const P2KVS* store;
    std::atomic<uint32_t> remaining{0};
  };
  auto* ctx = new StatsCtx();
  ctx->cb = std::move(cb);
  ctx->store = this;
  ctx->stats.workers.assign(workers_.size(), WorkerStatsSnapshot());
  ctx->remaining.store(static_cast<uint32_t>(workers_.size()), std::memory_order_relaxed);
  for (size_t i = 0; i < workers_.size(); i++) {
    auto* request = new Request();
    request->type = RequestType::kStats;
    request->stats_out = &ctx->stats.workers[i];
    request->callback = [ctx](const Status&) {
      // The acq_rel countdown publishes every worker's snapshot slot to the
      // finalizing thread.
      if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ctx->store->FinalizeStats(&ctx->stats);
        ctx->cb(std::move(ctx->stats));
        delete ctx;
      }
    };
    // kBypass: the drain request skips the capacity bound. A worker-thread
    // caller submitting to its OWN full queue must not park (it would wait
    // on work only it can drain — the self-deadlock class again, one layer
    // lower than the sync GetStats refusal above).
    workers_[i]->SubmitControl(request);
  }
}

Status P2kvsStats::SelfCheck() const {
  // Per worker AND in aggregate: stages partition disjoint sub-windows of
  // [submit, complete], so their sum can never exceed the end-to-end total.
  auto check_one = [](const WorkerStatsSnapshot& s, const char* scope) -> Status {
    // Overload-accounting doors: every data request that entered Submit is
    // either still in flight or resolved through exactly one of completed /
    // shed / expired. These counters work even with the stats recorder off,
    // so this check runs before the recorder-never-fed early-out.
    if (s.completed + s.shed + s.expired() > s.submitted) {
      return Status::Corruption(std::string("stats self-check failed (") + scope + ")",
                                "completed + shed + expired exceed submitted");
    }
    if (s.batch_size.Count() == 0 && s.stage_nanos_sum() == 0 && s.end_to_end_nanos == 0) {
      return Status::OK();  // recorder never fed: stats disabled or no traffic
    }
    if (s.end_to_end_nanos != 0 && s.stage_nanos_sum() > s.end_to_end_nanos) {
      return Status::Corruption(std::string("stats self-check failed (") + scope + ")",
                                "per-stage nanos exceed end-to-end nanos");
    }
    const uint64_t dispatches = s.write_batches + s.read_batches + s.singles;
    if (s.batch_size.Count() != dispatches) {
      return Status::Corruption(std::string("stats self-check failed (") + scope + ")",
                                "batch-size histogram count != dispatch count");
    }
    const double covered = s.batch_size.Sum();
    const double requests = static_cast<double>(s.requests_executed());
    if (covered < requests - 0.5 || covered > requests + 0.5) {
      return Status::Corruption(std::string("stats self-check failed (") + scope + ")",
                                "batch-size histogram sum != requests executed");
    }
    return Status::OK();
  };
  for (const WorkerStatsSnapshot& s : workers) {
    Status st = check_one(s, "worker");
    if (!st.ok()) {
      return st;
    }
  }
  Status st = check_one(totals, "totals");
  if (!st.ok()) {
    return st;
  }
  if (trace_enabled) {
    // Lifecycle: a worker only counts a completion for a request it sampled,
    // so completions can never outrun samples.
    if (trace_completed > trace_sampled) {
      return Status::Corruption("trace self-check failed",
                                "sampled completions exceed sampled submissions");
    }
    // Every worker-completed sampled request emits at least enqueue +
    // dequeue + complete. Appends are counted pre-drop, so ring wrap cannot
    // hide missing events from this check (no silent loss).
    if (trace_events < 3 * trace_completed) {
      return Status::Corruption("trace self-check failed",
                                "fewer events than 3x completed sampled requests");
    }
    // Drops are overwrites of appended events; they can never exceed appends.
    if (trace_dropped > trace_events) {
      return Status::Corruption("trace self-check failed",
                                "dropped events exceed appended events");
    }
  }
  return Status::OK();
}

std::string P2kvsStats::ToJson() const {
  std::string json = "{\"p2kvs_stats\":{";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"requests_submitted\":%llu,\"degraded_rejects\":%llu,",
                static_cast<unsigned long long>(requests_submitted),
                static_cast<unsigned long long>(degraded_rejects));
  json += buf;
  json += "\"totals\":" + totals.ToJson();
  std::snprintf(buf, sizeof(buf),
                ",\"async_io\":{\"submissions\":%llu,\"max_queue_depth\":%llu,"
                "\"reads_in_flight\":%lld}",
                static_cast<unsigned long long>(async_submissions),
                static_cast<unsigned long long>(async_max_queue_depth),
                static_cast<long long>(async_reads_in_flight));
  json += buf;
  if (trace_enabled) {
    std::snprintf(buf, sizeof(buf),
                  ",\"trace\":{\"events\":%llu,\"dropped\":%llu,\"sampled\":%llu,"
                  "\"completed\":%llu,\"flight_dumps\":%llu}",
                  static_cast<unsigned long long>(trace_events),
                  static_cast<unsigned long long>(trace_dropped),
                  static_cast<unsigned long long>(trace_sampled),
                  static_cast<unsigned long long>(trace_completed),
                  static_cast<unsigned long long>(trace_flight_dumps));
    json += buf;
  }
  json += ",\"skew\":" + skew.ToJson();
  json += ",\"workers\":[";
  for (size_t i = 0; i < workers.size(); i++) {
    if (i != 0) {
      json += ",";
    }
    json += workers[i].ToJson();
  }
  json += "]}}";
  return json;
}

std::string P2KVS::GetStatsString() const {
  P2kvsStats stats = GetStats();
  std::string out;
  char buf[256];
  out += "p2kvs stats\n";
  std::snprintf(buf, sizeof(buf),
                "  requests=%llu write_batches=%llu (avg %.2f req/batch) "
                "read_batches=%llu singles=%llu degraded_rejects=%llu\n",
                static_cast<unsigned long long>(stats.requests_submitted),
                static_cast<unsigned long long>(stats.write_batches),
                stats.AvgWriteBatchSize(),
                static_cast<unsigned long long>(stats.read_batches),
                static_cast<unsigned long long>(stats.singles),
                static_cast<unsigned long long>(stats.degraded_rejects));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  overload: submitted=%llu completed=%llu shed=%llu expired=%llu "
                "breaker_trips=%llu retries_denied=%llu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.breaker_trips),
                static_cast<unsigned long long>(stats.retries_denied));
  out += buf;
  const WorkerStatsSnapshot& t = stats.totals;
  std::snprintf(buf, sizeof(buf),
                "  stages(ms): queue_wait=%.2f batch_build=%.2f execute=%.2f "
                "complete=%.2f end_to_end=%.2f\n",
                t.queue_wait_nanos / 1e6, t.batch_build_nanos / 1e6, t.execute_nanos / 1e6,
                t.complete_nanos / 1e6, t.end_to_end_nanos / 1e6);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  engine(ms): wal=%.2f memtable=%.2f wal_lock=%.2f memtable_lock=%.2f "
                "retries=%llu\n",
                t.engine.wal_nanos / 1e6, t.engine.memtable_nanos / 1e6,
                t.engine.wal_lock_nanos / 1e6, t.engine.memtable_lock_nanos / 1e6,
                static_cast<unsigned long long>(t.engine.retry_count));
  out += buf;
  out += "  queue_wait_us: " + t.queue_wait_us.ToString() + "\n";
  out += "  execute_us:    " + t.execute_us.ToString() + "\n";
  out += "  end_to_end_us: " + t.end_to_end_us.ToString() + "\n";
  out += "  batch_size:    " + t.batch_size.ToString() + "\n";
  for (const WorkerStatsSnapshot& w : stats.workers) {
    std::snprintf(buf, sizeof(buf),
                  "  worker %d: requests=%llu depth=%llu health=%d fg_written=%llu "
                  "fg_read=%llu rejects=%llu\n",
                  w.worker_id, static_cast<unsigned long long>(w.requests_executed()),
                  static_cast<unsigned long long>(w.queue_depth), w.health_state,
                  static_cast<unsigned long long>(w.fg_bytes_written),
                  static_cast<unsigned long long>(w.fg_bytes_read),
                  static_cast<unsigned long long>(w.degraded_rejects));
    out += buf;
  }
  return out;
}

size_t P2KVS::ApproximateMemoryUsage() const {
  size_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->store()->ApproximateMemoryUsage();
  }
  return total;
}

std::vector<size_t> P2KVS::QueueDepths() const {
  std::vector<size_t> depths;
  depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    depths.push_back(worker->QueueDepth());
  }
  return depths;
}

std::string P2KVS::ExportTraceJson() const {
  if (tracer_ == nullptr) {
    return "{}";
  }
  return tracer_->ExportJson();
}

Status P2KVS::ExportTrace(const std::string& path) const {
  if (tracer_ == nullptr) {
    return Status::NotSupported("tracing disabled", "set P2kvsOptions::trace.enabled");
  }
  return tracer_->ExportToFile(path);
}

void P2KVS::DumpFlightRecorder(const std::string& reason) {
  if (tracer_ != nullptr) {
    tracer_->DumpFlightRecorder(reason);
  }
}

}  // namespace p2kvs
