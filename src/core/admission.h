// Overload control for the 2-D pipeline (ROADMAP item 1: admission control /
// load-shedding wired to the existing queue_capacity backpressure — the
// prerequisite for a network front-end, where parking a remote producer is
// not an option and excess load must be *rejected*, not absorbed).
//
// Three cooperating mechanisms, all per-worker (per-partition — overload is
// usually skewed, so one hot partition must shed without punishing the rest):
//
//   AdmissionController  sheds new arrivals at Worker::Submit when the
//                        partition is sustainedly behind (CoDel-style on the
//                        queue-wait signal the stats spine already measures),
//                        or when queue depth hits a hard ceiling.
//   RetryBudget          a token bucket bounding the *aggregate* retry rate
//                        of a worker, so correlated transient faults cannot
//                        multiply offered load exactly when the device is
//                        struggling (RetryPolicy alone bounds only one op).
//                        Lives in src/io/retry.h next to the retry loop it
//                        governs; configured and owned per worker.
//   CircuitBreaker       trips the partition into the existing degraded
//                        (read-only, fast-fail) health state after sustained
//                        hard-error pressure, and half-opens through the
//                        existing auto-resume machinery.
//
// Threading: RecordQueueWait / RetryBudget / CircuitBreaker::OnFailure are
// worker-thread-only (plain fields); the submit-side probe (Admit) is called
// by any user thread and reads two atomics — no clock read, no RMW, so an
// admission decision costs nothing measurable on the submit path. This file
// is on scripts/lint_atomics.py's strict list: every atomic access names its
// memory order explicitly.

#ifndef P2KVS_SRC_CORE_ADMISSION_H_
#define P2KVS_SRC_CORE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/util/status.h"

namespace p2kvs {

struct AdmissionConfig {
  // Master switch. Off by default: existing deployments keep pure parking
  // backpressure (bounded queue) or unbounded queues, unchanged.
  bool enabled = false;

  // CoDel-style control law: shed new arrivals while the queue-wait EWMA has
  // been above `target_queue_wait_us` continuously for `interval_us`.
  // Defaults follow the CoDel heuristic of interval ≈ a worst-case RTT and
  // target ≈ 5% of it, scaled to SSD-backed request latencies.
  uint32_t target_queue_wait_us = 1000;
  uint32_t interval_us = 20000;

  // Hard depth ceiling probed at submit: arrivals are shed outright when the
  // instantaneous queue depth reaches it. 0 = inherit the worker's
  // queue_capacity (when that is also 0 — unbounded queue — no depth check).
  size_t max_queue_depth = 0;

  // Shed-storm flight-recorder trigger: the first window with at least
  // `shed_storm_threshold` sheds dumps the flight recorder (once per store
  // lifetime), the same post-mortem path as hard errors. 0 = disabled.
  uint32_t shed_storm_threshold = 0;
  uint32_t shed_storm_window_ms = 1000;
};

// Per-worker admission policy. Admit() must be cheap and thread-safe (every
// user thread calls it on every submit); RecordQueueWait() is called only by
// the owning worker thread, once per dequeued head request.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  virtual const char* name() const = 0;

  // Worker thread: feed one measured queue wait (submit -> pop, nanoseconds)
  // observed at `now_nanos`. Drives the control law.
  virtual void RecordQueueWait(uint64_t wait_nanos, uint64_t now_nanos) = 0;

  // Any thread: should a new arrival be admitted given the instantaneous
  // queue depth? Pure read — no state change, no clock read.
  virtual bool Admit(size_t queue_depth) const = 0;

  // Cross-thread observability (stats snapshots).
  virtual bool overloaded() const = 0;
};

// CoDel-style controller (the default). The worker thread maintains an
// integer EWMA (alpha = 1/16) of queue wait and a "continuously above target
// since" edge; once the EWMA has been above target for a full interval it
// publishes overloaded=true, and arrivals are shed until the EWMA falls back
// under target. While overloaded, an arrival that finds the queue *empty* is
// still admitted: those probes are what let the EWMA decay — shedding 100%
// would starve the signal and latch the partition overloaded forever.
class CoDelAdmissionController : public AdmissionController {
 public:
  CoDelAdmissionController(const AdmissionConfig& config, size_t queue_capacity)
      : target_nanos_(static_cast<uint64_t>(config.target_queue_wait_us) * 1000),
        interval_nanos_(static_cast<uint64_t>(config.interval_us) * 1000),
        max_depth_(config.max_queue_depth != 0 ? config.max_queue_depth
                                               : queue_capacity) {}

  const char* name() const override { return "codel"; }

  void RecordQueueWait(uint64_t wait_nanos, uint64_t now_nanos) override {
    // Single-writer EWMA: the load/store pair is not a race because only the
    // owning worker thread writes it; relaxed is enough for the cross-thread
    // stats read, which tolerates any published value.
    uint64_t ewma = ewma_nanos_.load(std::memory_order_relaxed);
    const int64_t delta =
        static_cast<int64_t>(wait_nanos) - static_cast<int64_t>(ewma);
    int64_t step = delta / 16;
    if (step == 0 && delta != 0) step = delta < 0 ? -1 : 1;  // converge the tail
    ewma = static_cast<uint64_t>(static_cast<int64_t>(ewma) + step);
    ewma_nanos_.store(ewma, std::memory_order_relaxed);
    if (ewma > target_nanos_) {
      if (above_since_nanos_ == 0) above_since_nanos_ = now_nanos;
      if (now_nanos - above_since_nanos_ >= interval_nanos_) {
        // Relaxed: the flag guards no other data — a submit thread acting on
        // a slightly stale value only mis-times one shed decision.
        overloaded_.store(true, std::memory_order_relaxed);
      }
    } else {
      above_since_nanos_ = 0;
      overloaded_.store(false, std::memory_order_relaxed);
    }
  }

  bool Admit(size_t queue_depth) const override {
    if (max_depth_ != 0 && queue_depth >= max_depth_) return false;
    // Probe-when-empty: see class comment.
    if (queue_depth > 0 && overloaded_.load(std::memory_order_relaxed)) {
      return false;
    }
    return true;
  }

  bool overloaded() const override {
    return overloaded_.load(std::memory_order_relaxed);
  }

  uint64_t ewma_nanos() const { return ewma_nanos_.load(std::memory_order_relaxed); }

 private:
  const uint64_t target_nanos_;
  const uint64_t interval_nanos_;
  const size_t max_depth_;

  // Worker-thread-private control state (never read cross-thread).
  uint64_t above_since_nanos_ = 0;

  // Published signal: worker writes, submit threads read.
  std::atomic<uint64_t> ewma_nanos_{0};
  std::atomic<bool> overloaded_{false};
};

// Factory hook (P2kvsOptions::admission_factory / Worker::Config). The
// default builds a CoDelAdmissionController.
using AdmissionControllerFactory = std::function<std::unique_ptr<AdmissionController>(
    const AdmissionConfig& config, size_t queue_capacity, int worker_id)>;

std::unique_ptr<AdmissionController> MakeCoDelAdmissionController(
    const AdmissionConfig& config, size_t queue_capacity, int worker_id);

// The status a shed request completes with. Busy is inherently transient
// (Status::IsTransient), signalling "back off and resubmit" — the exact
// client contract admission control wants — while staying distinguishable
// from engine-originated Busy by message.
Status MakeShedStatus(int worker_id);

// Per-partition circuit breaker over the worker's write-path error signal.
// Closed (normal) -> open happens after `failure_threshold` hard failures
// inside a sliding window; "open" is not a new state machine — tripping
// reuses the existing health degrade (read-only fast-fail), and half-open /
// re-close reuse auto-resume + TryResume. failure_threshold == 0 disables
// the breaker entirely, preserving the pre-existing contract that the FIRST
// hard IO error degrades the partition immediately.
//
// Worker-thread-only except trips(), which stats threads read.
class CircuitBreaker {
 public:
  CircuitBreaker(uint32_t failure_threshold, uint64_t window_nanos)
      : failure_threshold_(failure_threshold), window_nanos_(window_nanos) {}

  bool enabled() const { return failure_threshold_ > 0; }

  // Record one failed write dispatch. True = threshold reached: the caller
  // must trip the partition (degrade) now. The window restarts on the first
  // failure after quiet time or after a trip.
  bool OnFailure(uint64_t now_nanos) {
    if (!enabled()) return true;  // disabled: every hard failure trips (legacy)
    if (window_start_nanos_ == 0 ||
        now_nanos - window_start_nanos_ > window_nanos_) {
      window_start_nanos_ = now_nanos;
      failures_in_window_ = 0;
    }
    ++failures_in_window_;
    if (failures_in_window_ >= failure_threshold_) {
      trips_.fetch_add(1, std::memory_order_relaxed);
      window_start_nanos_ = 0;
      failures_in_window_ = 0;
      return true;
    }
    return false;
  }

  // A successful write dispatch closes the window (failures must be
  // *sustained* to trip).
  void OnSuccess() {
    window_start_nanos_ = 0;
    failures_in_window_ = 0;
  }

  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  const uint32_t failure_threshold_;
  const uint64_t window_nanos_;
  uint32_t failures_in_window_ = 0;
  uint64_t window_start_nanos_ = 0;
  std::atomic<uint64_t> trips_{0};
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_ADMISSION_H_
