// GSN transaction log (paper §4.5 / Figure 11): every cross-instance
// transaction appends a begin(gsn) record before its sub-batches are
// submitted and a commit(gsn) record once all of them return. On recovery,
// GSNs with a begin but no commit identify WriteBatches that must be rolled
// back — the per-instance WAL replay simply skips records tagged with an
// uncommitted GSN.

#ifndef P2KVS_SRC_CORE_TXN_LOG_H_
#define P2KVS_SRC_CORE_TXN_LOG_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "src/io/env.h"
#include "src/io/retry.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_writer.h"

namespace p2kvs {

class TxnLog {
 public:
  // Opens (creating/appending) the log at `path` and replays its records.
  // Transient append/sync faults are absorbed per `retry` — the txn log is a
  // framework WAL, governed like the engines' WALs.
  static Status Open(Env* env, const std::string& path, std::unique_ptr<TxnLog>* log,
                     const RetryPolicy& retry = RetryPolicy());

  ~TxnLog();

  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;

  // Allocates the next GSN (strictly increasing, never 0).
  uint64_t NextGsn();

  // Durably records the transaction boundary events.
  Status LogBegin(uint64_t gsn);
  Status LogCommit(uint64_t gsn);

  // Resolves `gsn` as aborted (in-memory only — an abort needs no durable
  // record: on crash an uncommitted GSN is rolled back anyway). Called when a
  // transaction's begin or sub-batches failed, so the commit watermark can
  // advance past the dead GSN instead of waiting for a commit that will never
  // arrive. Idempotent; must not race LogCommit for the same gsn.
  void MarkAborted(uint64_t gsn);

  // True iff gsn committed before the last crash/restart (or during this
  // run). GSN 0 (non-transactional) is always committed.
  bool IsCommitted(uint64_t gsn) const;

  // Number of begun-but-uncommitted transactions seen at recovery.
  size_t UncommittedAtRecovery() const { return uncommitted_at_recovery_; }

  // Highest GSN W such that every gsn <= W is resolved (committed or
  // aborted). Everything at or below the watermark is answered from it plus
  // the small aborted exception set — no per-GSN committed entry survives.
  uint64_t CommittedWatermark() const;
  // Entries the committed-set representation currently holds: the sparse
  // committed tail above the watermark plus the aborted exception set.
  // Bounded by in-flight transactions + lifetime aborts, NOT by lifetime
  // commits (the unbounded-growth bug this representation fixes).
  size_t CommittedFootprint() const;

 private:
  TxnLog(Env* env, std::string path, const RetryPolicy& retry);

  Status Recover() EXCLUDES(mu_);
  Status Append(uint8_t tag, uint64_t gsn, bool sync) EXCLUDES(mu_);
  // Folds contiguously-resolved GSNs out of committed_tail_ into watermark_.
  void AdvanceWatermark() REQUIRES(mu_);

  Env* const env_;
  const std::string path_;
  const RetryPolicy retry_;

  mutable Mutex mu_;
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mu_);
  std::unique_ptr<log::Writer> writer_ GUARDED_BY(mu_);
  // Committed-set representation: every gsn <= watermark_ is resolved —
  // committed unless listed in aborted_; committed GSNs above the watermark
  // (out-of-order commits still waiting on a predecessor) sit in
  // committed_tail_ until the gap closes. This keeps memory proportional to
  // in-flight transactions + aborts instead of one set entry per lifetime
  // commit.
  uint64_t watermark_ GUARDED_BY(mu_) = 0;
  std::set<uint64_t> committed_tail_ GUARDED_BY(mu_);
  std::set<uint64_t> aborted_ GUARDED_BY(mu_);
  uint64_t max_gsn_ GUARDED_BY(mu_) = 0;
  // Written only during single-threaded recovery, read-only afterwards.
  size_t uncommitted_at_recovery_ = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_TXN_LOG_H_
