// EventListener: the framework-level observability callback surface. One
// listener (P2kvsOptions::listener) observes every partition: engine events
// (flush / compaction / write stall) are forwarded from the engines'
// EngineEventHooks with the owning worker's id attached, health transitions
// come from the per-worker governance state machine, and OnStatsDump carries
// the periodic reporter's JSON when stats_dump_period_ms is set.
//
// Threading: callbacks fire on whatever thread produced the event — engine
// background threads (flush/compaction), the worker thread (stalls during a
// write, health degradation), any thread calling Resume() (health recovery),
// or the stats-reporter thread (OnStatsDump). Implementations must be
// thread-safe and must not block; never call back into P2KVS synchronous
// APIs from a callback (the worker thread servicing the callback cannot
// serve the request it would wait on).

#ifndef P2KVS_SRC_CORE_EVENT_LISTENER_H_
#define P2KVS_SRC_CORE_EVENT_LISTENER_H_

#include <string>

#include "src/lsm/options.h"

namespace p2kvs {

enum class WorkerHealth : int;

class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushCompleted(int /*worker_id*/, const FlushEventInfo& /*info*/) {}
  virtual void OnCompactionCompleted(int /*worker_id*/, const CompactionEventInfo& /*info*/) {}
  virtual void OnWriteStalled(int /*worker_id*/, const StallEventInfo& /*info*/) {}
  virtual void OnHealthTransition(int /*worker_id*/, WorkerHealth /*from*/,
                                  WorkerHealth /*to*/) {}
  // Periodic stats reporter output (P2kvsStats::ToJson()).
  virtual void OnStatsDump(const std::string& /*stats_json*/) {}
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_EVENT_LISTENER_H_
