// Partition strategies for the accessing layer (paper §4.2). The default is
// the paper's modular hash (worker = Hash(key) % N): load-balanced, O(1), no
// read amplification. The paper notes that "appropriate partition strategies"
// can be configured to match workloads (e.g. key ranges); those live here.

#ifndef P2KVS_SRC_CORE_PARTITIONER_H_
#define P2KVS_SRC_CORE_PARTITIONER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace p2kvs {

// Maps a user key to a worker index in [0, num_workers).
using Partitioner = std::function<int(const Slice& key, int num_workers)>;

// The paper's default: worker = Hash(key) % N.
Partitioner MakeHashPartitioner();

// Range partitioning: boundaries[i] is the smallest key of partition i+1
// (so boundaries.size()+1 partitions are addressed; the partition index is
// clamped to num_workers-1). Keeps adjacent keys on one instance, making
// short scans single-instance at the cost of skew sensitivity.
Partitioner MakeRangePartitioner(std::vector<std::string> boundaries);

// Two-choice hashing: of the two candidate workers given by independent
// hashes, pick the one indicated by a third tie-break hash. Spreads
// adversarial key sets that collide under a single hash function (the
// "multiple independent hash functions" direction the paper cites).
Partitioner MakeTwoChoiceHashPartitioner();

}  // namespace p2kvs

#endif  // P2KVS_SRC_CORE_PARTITIONER_H_
