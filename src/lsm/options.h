// Options for the LSM engine ("RocksLite"). The defaults model RocksDB's
// behaviour as the paper describes it; CompatMode switches off the features
// RocksDB has and LevelDB lacks (used for the §5.6.1 portability study), and
// CompactionStyle::kTiered is the PebblesDB-style fragmented-LSM stand-in.

#ifndef P2KVS_SRC_LSM_OPTIONS_H_
#define P2KVS_SRC_LSM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/io/env.h"
#include "src/io/retry.h"
#include "src/sst/cache.h"
#include "src/sst/filter_policy.h"
#include "src/util/comparator.h"

namespace p2kvs {

class Snapshot;

// Feature profile of the wrapped production KVS.
enum class CompatMode {
  // Group logging, concurrent MemTable, pipelined write, MultiGet.
  kRocksDB,
  // Single-writer queue with group commit, vanilla MemTable, no MultiGet
  // fast path.
  kLevelDB,
};

enum class CompactionStyle {
  // Classic leveled compaction: L1+ are fully sorted, merges rewrite the
  // overlapping range of the next level (RocksDB/LevelDB).
  kLeveled,
  // Tiered / fragmented compaction: every level tolerates overlapping runs;
  // a full level is pushed down without merging into the next level's data.
  // Lower write amplification, higher read cost — the PebblesDB profile.
  kTiered,
};

// Completed-event payloads for the engine observability hooks below.
struct FlushEventInfo {
  uint64_t bytes_written = 0;  // size of the L0 file produced
};

struct CompactionEventInfo {
  int level = 0;  // input level (output is level + 1)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

struct StallEventInfo {
  uint64_t stall_micros = 0;  // time one write spent throttled/blocked
};

// Engine-side observability hooks. Engines invoke these from whatever thread
// performed the work (flush/compaction fire from background threads, stalls
// from the writing thread) with no engine mutex held; installers must be
// thread-safe. Installed once before the engine serves traffic (p2KVS wires
// them to the framework EventListener via KVStore::InstallEventHooks).
struct EngineEventHooks {
  std::function<void(const FlushEventInfo&)> on_flush_completed;
  std::function<void(const CompactionEventInfo&)> on_compaction_completed;
  std::function<void(const StallEventInfo&)> on_write_stalled;
};

struct Options {
  // Environment (filesystem / device model). Not owned.
  Env* env = Env::Default();

  // User-key ordering. Not owned.
  const Comparator* comparator = BytewiseComparator();

  bool create_if_missing = true;
  bool error_if_exists = false;

  // MemTable size before it is frozen and flushed. RocksDB default is 64 MiB;
  // the scaled-down default keeps flush/compaction activity frequent at
  // benchmark sizes.
  size_t write_buffer_size = 8 * 1024 * 1024;

  // Data block size inside SSTs.
  size_t block_size = 4 * 1024;

  // Bloom filter bits per key; 0 disables filters.
  int bloom_bits_per_key = 10;

  // Block cache capacity per instance. Paper: 8 MiB per RocksDB instance.
  size_t block_cache_bytes = 8 * 1024 * 1024;

  // Max number of open SSTs kept in the table cache.
  int max_open_files = 1000;

  // Base target size of L1 (each deeper level is 10x larger).
  uint64_t max_bytes_for_level_base = 10 * 1024 * 1024;
  double max_bytes_for_level_multiplier = 10.0;

  // Target SST size.
  uint64_t target_file_size = 2 * 1024 * 1024;

  // L0 file-count thresholds (RocksDB-style write throttling).
  int l0_compaction_trigger = 4;
  int l0_slowdown_writes_trigger = 8;
  int l0_stop_writes_trigger = 12;

  // Feature profile and compaction shape.
  CompatMode compat_mode = CompatMode::kRocksDB;
  CompactionStyle compaction_style = CompactionStyle::kLeveled;

  // Tiered mode: number of runs per level before push-down.
  int tiered_runs_per_level = 4;

  // RocksDB concurrency features (ignored in kLevelDB mode).
  bool concurrent_memtable = true;
  bool pipelined_write = true;

  // Max batches merged into one write group by the leader.
  int max_write_group_size = 32;

  // --- Async I/O (submission/completion Env; src/io/async_io.h). ---
  // Batch the uncached SST block reads inside MultiGet through a per-DB
  // AsyncIoContext, so one worker's pre-merged kMultiGet batch reaches the
  // device at the batch's queue depth instead of one read at a time.
  // Disabled = the classic sequential per-key read path.
  bool async_io = true;
  // Queue depth of the per-DB AsyncIoContext (thread-pool size / ring size).
  int io_queue_depth = 16;
  // Overlap the WAL fsync of a sync write with the group's memtable inserts:
  // the leader flushes the record to the OS, submits the fsync, inserts, and
  // waits for the fsync before acknowledging. Only effective when
  // pipelined_write is off — a pipelined next leader would append to the WAL
  // file while the fsync is in flight. An fsync failure is still returned to
  // every writer in the group and sticks as a background error, but the
  // group's memtable insert has already happened by then (same visibility-
  // before-durability window the async-logging default always has).
  bool async_wal_sync = false;

  // Bounded retry for transient WAL faults (failed append/sync tagged
  // retryable, e.g. by ErrorInjectionEnv). Hard errors are never retried;
  // they stick as bg_error_ until Resume().
  RetryPolicy wal_retry;

  // --- Instrumentation / experiment hooks (paper Figures 7 & 8). ---
  // Skip the MemTable insert entirely (isolates the WAL stage).
  bool debug_disable_memtable = false;
  // Skip WAL writes entirely (isolates the MemTable stage).
  bool debug_disable_wal = false;
  // Skip background flush/compaction work (keeps stage-isolation runs pure).
  bool debug_disable_background = false;
};

struct ReadOptions {
  bool verify_checksums = false;
  bool fill_cache = true;
  // Non-null: read as of this snapshot. Null: read latest committed state.
  const Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  // fsync the WAL before acknowledging. The paper (and RocksDB's default)
  // uses async logging — buffered WAL appends with no per-write fsync.
  bool sync = false;
  // Global sequence number tag for cross-instance transactions (0 = none);
  // recorded in the WAL so p2KVS recovery can roll back uncommitted
  // transactions (paper §4.5).
  uint64_t gsn = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_OPTIONS_H_
