#include "src/lsm/db_impl.h"

#include <algorithm>
#include <vector>

#include "src/io/io_stats.h"
#include "src/lsm/db_iter.h"
#include "src/lsm/filename.h"
#include "src/lsm/internal_filter_policy.h"
#include "src/lsm/merging_iterator.h"
#include "src/sst/table_builder.h"
#include "src/util/clock.h"
#include "src/util/coding.h"
#include "src/util/perf_context.h"
#include "src/util/trace.h"
#include "src/wal/log_reader.h"

namespace p2kvs {

// A writer parked in the leader-election queue (paper Figure 3). All fields
// are mutated under the DB mutex (the CondVar is bound to it).
struct DBImpl::Writer {
  Writer(Mutex* mu, WriteBatch* b, bool s, uint64_t g)
      : batch(b), sync(s), gsn(g), cv(mu) {}

  WriteBatch* batch;
  bool sync;
  uint64_t gsn;
  SequenceNumber first_sequence = 0;  // assigned by the leader

  bool done = false;
  bool run_parallel = false;  // leader asked this follower to insert itself
  Status status;
  CondVar cv;

  // Set on followers participating in a parallel memtable insert.
  struct GroupState* group = nullptr;
};

// Shared state of one parallel-memtable write group.
struct GroupState {
  explicit GroupState(Mutex* mu) : leader_cv(mu) {}

  std::atomic<int> pending{0};
  MemTable* mem = nullptr;
  CondVar leader_cv;  // signals the leader when pending==0
  Status insert_error;  // first failed concurrent insert; guarded by the DB mutex
};

static Options SanitizeOptions(const Options& src) {
  Options result = src;
  if (result.compat_mode == CompatMode::kLevelDB) {
    // LevelDB has neither the concurrent MemTable nor the pipelined write.
    result.concurrent_memtable = false;
    result.pipelined_write = false;
  }
  // The simplified pipeline inserts multiple groups into the memtable at
  // once, which requires the CAS insert path.
  if (!result.concurrent_memtable) {
    result.pipelined_write = false;
  }
  if (result.max_write_group_size < 1) {
    result.max_write_group_size = 1;
  }
  return result;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname,
               GsnRecoveryFilter /*recovery_filter*/)
    : options_(SanitizeOptions(raw_options)),
      dbname_(dbname),
      env_(raw_options.env),
      internal_comparator_(raw_options.comparator) {
  if (options_.block_cache_bytes > 0) {
    block_cache_ = NewLRUCache(options_.block_cache_bytes);
  }
  if (options_.bloom_bits_per_key > 0) {
    user_filter_policy_.reset(NewBloomFilterPolicy(options_.bloom_bits_per_key));
    filter_policy_ = std::make_unique<InternalFilterPolicy>(user_filter_policy_.get());
  }
  sst_options_.comparator = &internal_comparator_;
  sst_options_.block_size = options_.block_size;
  sst_options_.filter_policy = filter_policy_.get();
  sst_options_.block_cache = block_cache_.get();
  table_cache_ = std::make_unique<TableCache>(dbname_, options_, sst_options_,
                                              options_.max_open_files);
  if (options_.async_io) {
    AsyncIoOptions io_opts;
    io_opts.queue_depth = options_.io_queue_depth;
    io_ctx_ = NewAsyncIoContext(io_opts);
  }
  versions_ = std::make_unique<VersionSet>(dbname_, &options_, table_cache_.get(),
                                           &internal_comparator_);
}

DBImpl::~DBImpl() {
  // Wait for in-flight writes, then stop the background thread.
  {
    MutexLock lock(&mutex_);
    shutting_down_.store(true, std::memory_order_release);
    background_work_cv_.SignalAll();
    while (background_active_) {
      background_done_cv_.Wait();
    }
  }
  if (background_thread_.joinable()) {
    background_work_cv_.SignalAll();
    background_thread_.join();
  }
  if (logfile_ != nullptr) {
    // Destructor cannot propagate; synced records are already durable and
    // the async-logging contract accepts tail loss.
    logfile_->Close().IgnoreError();
  }
}

Status DB::Open(const Options& options, const std::string& name, std::unique_ptr<DB>* dbptr,
                GsnRecoveryFilter recovery_filter) {
  dbptr->reset();
  auto impl = std::make_unique<DBImpl>(options, name, recovery_filter);
  Status s = impl->Recover(recovery_filter);
  if (!s.ok()) {
    return s;
  }
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  return options.env->RemoveDirRecursively(dbname);
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) {
    return s;
  }
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" point to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    // Best-effort cleanup of the half-written manifest; the original error
    // is what the caller needs to see.
    env_->RemoveFile(manifest).IgnoreError();
  }
  return s;
}

Status DBImpl::Recover(GsnRecoveryFilter filter) {
  MutexLock lock(&mutex_);

  // CreateDir tolerates an existing directory, so any failure here is real
  // and everything below (CURRENT probe, WAL scan) would misread an
  // inaccessible directory as a fresh one.
  Status dir_status = env_->CreateDir(dbname_);
  if (!dir_status.ok()) {
    return dir_status;
  }
  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(dbname_, "does not exist (create_if_missing is false)");
    }
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists is true)");
  }

  Status s = versions_->Recover();
  if (!s.ok()) {
    return s;
  }

  // Replay any WAL newer than the manifest's log number.
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  std::vector<uint64_t> logs;
  for (const std::string& filename : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(filename, &number, &type) && type == FileType::kLogFile &&
        number >= min_log) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  SequenceNumber max_sequence = versions_->LastSequence();
  for (uint64_t log_number : logs) {
    s = RecoverLogFile(log_number, filter, &max_sequence);
    if (!s.ok()) {
      return s;
    }
  }
  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }
  visible_sequence_.store(versions_->LastSequence(), std::memory_order_release);

  // Open a fresh WAL.
  uint64_t new_log_number = versions_->NewFileNumber();
  s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &logfile_);
  if (!s.ok()) {
    return s;
  }
  log_ = std::make_unique<log::Writer>(logfile_.get());
  logfile_number_ = new_log_number;
  if (mem_ == nullptr) {
    mem_ = std::make_shared<MemTable>(internal_comparator_);
  }

  VersionEdit edit;
  edit.SetLogNumber(new_log_number);
  s = versions_->LogAndApply(&edit, &mutex_);
  if (!s.ok()) {
    return s;
  }

  RemoveObsoleteFiles();

  background_thread_ = std::thread([this] { BackgroundThreadMain(); });
  MaybeScheduleCompaction();
  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, GsnRecoveryFilter filter,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t /*bytes*/, const Status& s) override {
      // Keep the first error; recovery tolerates a torn tail.
      if (status->ok()) {
        *status = s;
      }
    }
  };

  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }

  Status ignored_corruption;
  LogReporter reporter;
  reporter.status = &ignored_corruption;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true);

  Slice record;
  std::string scratch;
  WriteBatch batch;
  if (mem_ == nullptr) {
    mem_ = std::make_shared<MemTable>(internal_comparator_);
  }
  while (reader.ReadRecord(&record, &scratch)) {
    // Record layout: varint64 GSN followed by the WriteBatch contents.
    uint64_t gsn = 0;
    Slice payload = record;
    if (!GetVarint64(&payload, &gsn)) {
      continue;  // malformed; skip
    }
    if (payload.size() < 12) {
      continue;
    }
    WriteBatchInternal::SetContents(&batch, payload);

    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (filter != nullptr && !filter(gsn)) {
      // Uncommitted transaction writes are rolled back by skipping them.
      continue;
    }

    s = WriteBatchInternal::InsertInto(&batch, mem_.get(), /*concurrent=*/false);
    if (!s.ok()) {
      return s;
    }

    if (mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
      VersionEdit edit;
      s = WriteLevel0Table(mem_.get(), &edit);
      if (!s.ok()) {
        return s;
      }
      edit.SetLogNumber(log_number + 1);  // this log is fully absorbed
      s = versions_->LogAndApply(&edit, &mutex_);
      if (!s.ok()) {
        return s;
      }
      mem_ = std::make_shared<MemTable>(internal_comparator_);
    }
  }

  // Flush whatever remains so the replayed log can be dropped once a new log
  // is installed... keep it in mem_; the new log_number edit written by
  // Recover() marks these logs obsolete only after a flush, so flush now if
  // non-empty.
  if (mem_->NumEntries() > 0) {
    VersionEdit edit;
    s = WriteLevel0Table(mem_.get(), &edit);
    if (!s.ok()) {
      return s;
    }
    edit.SetLogNumber(log_number + 1);
    s = versions_->LogAndApply(&edit, &mutex_);
    if (!s.ok()) {
      return s;
    }
    mem_ = std::make_shared<MemTable>(internal_comparator_);
  }

  return Status::OK();
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit) {
  // Recovery-only path: single-threaded, so holding mutex_ across the
  // BuildTable IO is fine (CompactMemTable is the concurrent flush path).
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  std::unique_ptr<Iterator> iter(mem->NewIterator());

  Status s;
  {
    IoPurposeScope purpose(IoPurpose::kFlush);
    s = BuildTable(dbname_, env_, sst_options_, table_cache_.get(), iter.get(), &meta);
  }
  pending_outputs_.erase(meta.number);

  if (s.ok() && meta.file_size > 0) {
    edit->AddFile(0, meta.number, meta.file_size, meta.smallest, meta.largest);
    stats_.flush_count++;
    stats_.flush_bytes_written += meta.file_size;
  }
  return s;
}

// ---------------- Write path ----------------

Status DBImpl::Put(const WriteOptions& o, const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& o, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(o, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  PerfContext& perf = GetPerfContext();
  const uint64_t op_start = NowNanos();
  perf.write_count++;

  Writer w(&mutex_, updates, options.sync, options.gsn);

  // The initial mutex acquisition is part of the group-logging lock cost
  // (Figure 6's "WAL lock"), so it is timed with the queue wait.
  {
    ScopedTimerNanos t(&perf.wal_lock_nanos);
    mutex_.Lock();
    writers_.push_back(&w);
    while (true) {
      if (w.done) {
        break;
      }
      if (w.run_parallel) {
        // The leader delegated this writer's memtable insert to it.
        GroupState* group = w.group;
        mutex_.Unlock();
        Status insert_status;
        {
          ScopedTimerNanos mt(&perf.memtable_nanos);
          insert_status = WriteBatchInternal::InsertInto(w.batch, group->mem,
                                                         /*concurrent=*/true);
        }
        mutex_.Lock();
        // The leader folds insert_error into the whole group's result after
        // the pending countdown — every member shares the WAL record, so a
        // partially applied group must fail as one.
        if (!insert_status.ok() && group->insert_error.ok()) {
          group->insert_error = insert_status;
        }
        w.run_parallel = false;
        if (group->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          group->leader_cv.SignalAll();
        }
        continue;
      }
      if (!writers_.empty() && &w == writers_.front()) {
        break;  // this thread is the leader
      }
      w.cv.Wait();
    }
  }
  if (w.done) {
    mutex_.Unlock();
    perf.total_write_nanos += NowNanos() - op_start;
    return w.status;
  }

  // This thread is now the group leader.
  Status status = MakeRoomForWrite(/*force=*/false);
  uint64_t last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  bool early_retired = false;
  std::vector<Writer*> group_members_out;
  if (status.ok() && updates != nullptr) {
    uint64_t group_gsn = 0;
    WriteBatch* write_batch = BuildBatchGroup(&last_writer, &group_gsn);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    const SequenceNumber first_sequence = last_sequence + 1;
    last_sequence += WriteBatchInternal::Count(write_batch);
    // Publish the allocation immediately (still under the mutex): in
    // pipelined mode the next leader reads LastSequence before this group's
    // memtable phase finishes. Read visibility advances separately via
    // visible_sequence_.
    versions_->SetLastSequence(last_sequence);

    // Assign per-writer sequences for the parallel insert path.
    {
      SequenceNumber seq = first_sequence;
      for (Writer* p : writers_) {
        p->first_sequence = seq;
        if (p->batch != nullptr) {
          WriteBatchInternal::SetSequence(p->batch, seq);
          seq += WriteBatchInternal::Count(p->batch);
        }
        if (p == last_writer) {
          break;
        }
      }
    }

    // Identify the group's members (front..last_writer).
    std::vector<Writer*>& group_members = group_members_out;
    for (Writer* p : writers_) {
      group_members.push_back(p);
      if (p == last_writer) {
        break;
      }
    }

    MemTable* mem = mem_.get();
    const bool parallel_memtable = options_.concurrent_memtable && group_members.size() > 1 &&
                                   !options_.debug_disable_memtable;
    active_memtable_writers_++;

    // Captured before the WAL block: write_batch may be retired (pipelined
    // path) before the trace events referencing it are emitted.
    const uint64_t batch_entries =
        static_cast<uint64_t>(WriteBatchInternal::Count(write_batch));

    // --- WAL, outside the mutex (other writers may enqueue meanwhile). ---
    mutex_.Unlock();
    bool sync_error = false;
    // Async WAL sync: leader submits the fsync and overlaps it with the
    // memtable phase, waiting just before acknowledgment. Safe only when the
    // next leader cannot touch the WAL file meanwhile (non-pipelined mode).
    const bool async_sync = w.sync && options_.async_wal_sync && io_ctx_ != nullptr &&
                            !options_.pipelined_write && !options_.debug_disable_wal;
    AsyncIoOp sync_op;
    bool sync_in_flight = false;
    if (!options_.debug_disable_wal) {
      ScopedTimerNanos t(&perf.wal_nanos);
      std::string record;
      PutVarint64(&record, group_gsn);
      Slice contents = WriteBatchInternal::Contents(write_batch);
      record.append(contents.data(), contents.size());
      // Transient WAL faults are retried in place (an injected append fails
      // before any byte reaches the file, so re-issuing is safe; a torn
      // fragment from a mid-record failure is skipped by the log reader's
      // resync path). Hard errors fall through and stick as bg_error_.
      status = RunWithRetry(env_, options_.wal_retry,
                            [&] { return log_->AddRecord(record); });
      if (status.ok()) {
        if (async_sync) {
          // Push the record to the OS now; the durability barrier itself
          // rides a pool thread while this group inserts into the memtable.
          status = log_->Flush();
          if (status.ok()) {
            io_ctx_->SubmitSync(logfile_.get(), &sync_op);
            sync_in_flight = true;
          } else {
            sync_error = true;
          }
        } else if (w.sync) {
          status = RunWithRetry(env_, options_.wal_retry, [&] { return log_->Sync(); });
          if (!status.ok()) {
            sync_error = true;
          }
        } else {
          // Async logging (RocksDB default): push to the OS, no fsync.
          status = log_->Flush();
        }
      }
      if (status.ok()) {
        TraceEmitEngine(TraceEventType::kWalAppend, record.size());
      }
    }

    if (options_.pipelined_write && status.ok()) {
      // Pipelined write: retire the group from the queue right after the WAL
      // so the next leader's logging overlaps this group's memtable phase.
      // Members are marked done only after the memtable apply below.
      mutex_.Lock();
      // tmp_batch_ is shared between successive leaders; it must be released
      // before the next leader is promoted (it may merge into it and read it
      // for its WAL while this thread continues).
      if (write_batch == &tmp_batch_) {
        tmp_batch_.Clear();
        write_batch = nullptr;
      }
      for (size_t i = 0; i < group_members.size(); i++) {
        assert(writers_.front() == group_members[i]);
        writers_.pop_front();
      }
      if (!writers_.empty()) {
        writers_.front()->cv.Signal();
      }
      mutex_.Unlock();
      early_retired = true;
    }

    GroupState group_state(&mutex_);
    if (status.ok() && !options_.debug_disable_memtable) {
      if (parallel_memtable) {
        group_state.mem = mem;
        group_state.pending.store(static_cast<int>(group_members.size()),
                                  std::memory_order_release);
        // Wake the followers to insert their own batches concurrently.
        mutex_.Lock();
        for (Writer* p : group_members) {
          if (p != &w) {
            p->group = &group_state;
            p->run_parallel = true;
            p->cv.Signal();
          }
        }
        mutex_.Unlock();
        Status leader_insert;
        {
          ScopedTimerNanos mt(&perf.memtable_nanos);
          leader_insert = WriteBatchInternal::InsertInto(w.batch, mem,
                                                         /*concurrent=*/true);
        }
        {
          // Group synchronization: wait for every follower to finish
          // (the "MemTable lock" cost in Figure 6).
          ScopedTimerNanos lt(&perf.memtable_lock_nanos);
          MutexLock relock(&mutex_);
          if (!leader_insert.ok() && group_state.insert_error.ok()) {
            group_state.insert_error = leader_insert;
          }
          group_state.pending.fetch_sub(1, std::memory_order_acq_rel);
          while (group_state.pending.load(std::memory_order_acquire) > 0) {
            group_state.leader_cv.Wait();
          }
          if (status.ok()) {
            status = group_state.insert_error;
          }
        }
      } else {
        ScopedTimerNanos mt(&perf.memtable_nanos);
        status = WriteBatchInternal::InsertInto(write_batch, mem,
                                                options_.concurrent_memtable);
      }
      if (status.ok()) {
        TraceEmitEngine(TraceEventType::kMemtableInsert, batch_entries);
      }
    }

    // Reap the overlapped fsync before anyone in the group is acknowledged.
    if (sync_in_flight) {
      ScopedTimerNanos t(&perf.wal_nanos);
      AsyncIoOp* op = &sync_op;
      io_ctx_->Wait(&op, 1);
      if (!sync_op.status.ok() && status.ok()) {
        status = sync_op.status;
        sync_error = true;
      }
    }

    // Publish the new sequence in commit order (ordering synchronization
    // after the index update: accounted as MemTable-lock time).
    {
      ScopedTimerNanos t(&perf.memtable_lock_nanos);
      PublishSequence(first_sequence, last_sequence);
    }

    mutex_.Lock();
    active_memtable_writers_--;
    if (active_memtable_writers_ == 0) {
      memtable_switch_cv_.SignalAll();
    }
    stats_.write_group_count++;
    stats_.write_request_count += group_members.size();
    if (sync_error) {
      RecordBackgroundError(status);
    }
    if (write_batch == &tmp_batch_) {
      tmp_batch_.Clear();
    }
  }

  // Complete the group and promote the next leader (already promoted in the
  // pipelined path; only completion remains there).
  {
    ScopedTimerNanos t(&perf.wal_lock_nanos);
    if (early_retired) {
      for (Writer* ready : group_members_out) {
        if (ready != &w) {
          ready->status = status;
          ready->done = true;
          ready->cv.Signal();
        }
      }
    } else {
      while (true) {
        Writer* ready = writers_.front();
        writers_.pop_front();
        if (ready != &w) {
          ready->status = status;
          ready->done = true;
          ready->cv.Signal();
        }
        if (ready == last_writer) {
          break;
        }
      }
      if (!writers_.empty()) {
        writers_.front()->cv.Signal();
      }
    }
  }
  mutex_.Unlock();

  perf.total_write_nanos += NowNanos() - op_start;
  return status;
}

void DBImpl::PublishSequence(SequenceNumber first_seq, SequenceNumber last_seq) {
  MutexLock lock(&publish_mutex_);
  while (visible_sequence_.load(std::memory_order_acquire) != first_seq - 1) {
    publish_cv_.Wait();
  }
  visible_sequence_.store(last_seq, std::memory_order_release);
  publish_cv_.SignalAll();
}

WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer, uint64_t* group_gsn) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);
  *group_gsn = first->gsn;

  size_t size = WriteBatchInternal::ByteSize(first->batch);
  int count = 1;

  // Allow the group to grow up to a maximum size, but if the original write
  // is small, limit the growth so we do not slow down the small write too
  // much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *last_writer = first;

  // GSN-tagged (transactional) batches commit alone so recovery can roll
  // them back precisely.
  if (first->gsn != 0) {
    return result;
  }

  auto iter = writers_.begin();
  ++iter;  // advance past "first"
  for (; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (count >= options_.max_write_group_size) {
      break;
    }
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a non-sync write.
      break;
    }
    if (w->gsn != 0) {
      break;
    }
    if (w->batch != nullptr) {
      size += WriteBatchInternal::ByteSize(w->batch);
      if (size > max_size) {
        break;
      }

      // Append to *result.
      if (result == first->batch) {
        // Switch to temporary batch instead of disturbing caller's batch.
        result = &tmp_batch_;
        assert(WriteBatchInternal::Count(result) == 0);
        WriteBatchInternal::Append(result, first->batch);
      }
      WriteBatchInternal::Append(result, w->batch);
    }
    *last_writer = w;
    count++;
  }
  return result;
}

Status DBImpl::MakeRoomForWrite(bool force) {
  bool allow_delay = !force;
  Status s;
  while (true) {
    if (!bg_error_.ok()) {
      s = bg_error_;
      break;
    }
    if (options_.debug_disable_memtable) {
      // WAL-only mode: the memtable never grows, nothing to make room for.
      break;
    }
    if (allow_delay &&
        versions_->NumLevelFiles(0) >= options_.l0_slowdown_writes_trigger &&
        options_.compaction_style == CompactionStyle::kLeveled) {
      // Soft limit: delay each write by 1ms to let compactions catch up.
      // Copy the hook while still locked: event_hooks_ may be replaced by
      // SetEventHooks the moment the mutex is released.
      auto stall_hook = event_hooks_.on_write_stalled;
      mutex_.Unlock();
      env_->SleepForMicroseconds(1000);
      if (stall_hook) {
        StallEventInfo info;
        info.stall_micros = 1000;
        stall_hook(info);
      }
      mutex_.Lock();
      stats_.stall_micros += 1000;
      allow_delay = false;  // do not delay a single write more than once
    } else if (!force && mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      break;  // there is room in the current memtable
    } else if (imm_ != nullptr) {
      // The previous memtable is still being flushed; wait (write stall).
      const uint64_t t0 = NowMicros();
      background_work_cv_.SignalAll();
      background_done_cv_.Wait();
      const uint64_t stalled = NowMicros() - t0;
      stats_.stall_micros += stalled;
      NotifyStall(stalled);
    } else if (versions_->NumLevelFiles(0) >= options_.l0_stop_writes_trigger &&
               !options_.debug_disable_background) {
      // Hard limit: too many L0 files.
      const uint64_t t0 = NowMicros();
      background_work_cv_.SignalAll();
      background_done_cv_.Wait();
      const uint64_t stalled = NowMicros() - t0;
      stats_.stall_micros += stalled;
      NotifyStall(stalled);
    } else {
      // Switch to a new memtable. Wait out in-flight pipelined inserts first.
      while (active_memtable_writers_ > 0) {
        memtable_switch_cv_.Wait();
      }
      uint64_t new_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> lfile;
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
      if (!s.ok()) {
        break;
      }
      // The retired WAL is fully synced (or async by contract); a close
      // error cannot lose acknowledged data, and the memtable it covers is
      // being sealed for flush anyway.
      logfile_->Close().IgnoreError();
      logfile_ = std::move(lfile);
      logfile_number_ = new_log_number;
      log_ = std::make_unique<log::Writer>(logfile_.get());
      imm_ = mem_;
      mem_ = std::make_shared<MemTable>(internal_comparator_);
      force = false;
      MaybeScheduleCompaction();
    }
  }
  return s;
}

// ---------------- Read path ----------------

Status DBImpl::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  Status s;
  mutex_.Lock();
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = VisibleSequence();
  }

  std::shared_ptr<MemTable> mem = mem_;
  std::shared_ptr<MemTable> imm = imm_;
  Version* current = versions_->current();
  current->Ref();

  {
    mutex_.Unlock();
    LookupKey lkey(key, snapshot);
    if (mem->Get(lkey, value, &s)) {
      // Done
    } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
      // Done
    } else {
      s = current->Get(options, lkey, value);
    }
    mutex_.Lock();
  }

  current->Unref();
  mutex_.Unlock();
  return s;
}

std::vector<Status> DBImpl::MultiGet(const ReadOptions& options, const std::vector<Slice>& keys,
                                     std::vector<std::string>* values) {
  // One snapshot/version for the whole batch: the "multiget" fast path the
  // p2KVS OBM leans on for read batching.
  std::vector<Status> statuses(keys.size());
  values->assign(keys.size(), std::string());

  mutex_.Lock();
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = VisibleSequence();
  }
  std::shared_ptr<MemTable> mem = mem_;
  std::shared_ptr<MemTable> imm = imm_;
  Version* current = versions_->current();
  current->Ref();
  mutex_.Unlock();

  // Memtables first (cheap, in-memory); keys that fall through go to the
  // version as one batch so their SST block reads reach the device together.
  std::vector<std::unique_ptr<LookupKey>> lkeys(keys.size());
  std::vector<GetBatchItem> items(keys.size());
  std::vector<GetBatchItem*> pending;
  pending.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    Status& s = statuses[i];
    std::string* value = &(*values)[i];
    lkeys[i] = std::make_unique<LookupKey>(keys[i], snapshot);
    const LookupKey& lkey = *lkeys[i];
    if (mem->Get(lkey, value, &s)) {
      // Done
    } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
      // Done
    } else if (io_ctx_ != nullptr) {
      items[i].key = &lkey;
      items[i].value = value;
      pending.push_back(&items[i]);
    } else {
      s = current->Get(options, lkey, value);
    }
  }
  if (!pending.empty()) {
    current->MultiGet(options, io_ctx_.get(), pending);
    for (size_t i = 0; i < keys.size(); i++) {
      if (items[i].key != nullptr) {
        statuses[i] = items[i].status;
      }
    }
  }

  mutex_.Lock();
  current->Unref();
  mutex_.Unlock();
  return statuses;
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  MutexLock lock(&mutex_);
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = VisibleSequence();
  }

  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  std::shared_ptr<MemTable> mem_pin = mem_;
  std::shared_ptr<MemTable> imm_pin = imm_;
  if (imm_ != nullptr) {
    list.push_back(imm_->NewIterator());
  }
  Version* current = versions_->current();
  current->Ref();
  current->AddIterators(options, &list);
  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(), static_cast<int>(list.size()));

  internal_iter->RegisterCleanup([this, current, mem_pin, imm_pin]() mutable {
    MutexLock guard(&mutex_);
    current->Unref();
    mem_pin.reset();
    imm_pin.reset();
  });

  return NewDBIterator(internal_comparator_.user_comparator(), internal_iter, snapshot);
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock lock(&mutex_);
  return snapshots_.New(VisibleSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock lock(&mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

// ---------------- Background work ----------------

void DBImpl::MaybeScheduleCompaction() {
  background_work_cv_.SignalAll();
}

void DBImpl::BackgroundThreadMain() {
  IoPurposeScope purpose(IoPurpose::kCompaction);
  mutex_.Lock();
  while (!shutting_down_.load(std::memory_order_acquire)) {
    if (!bg_error_.ok()) {
      background_done_cv_.SignalAll();
      background_work_cv_.Wait();
      continue;
    }
    if (imm_ != nullptr) {
      background_active_ = true;
      CompactMemTable();
      background_active_ = false;
      background_done_cv_.SignalAll();
      continue;
    }
    if (!options_.debug_disable_background && versions_->NeedsCompaction()) {
      background_active_ = true;
      BackgroundCompaction();
      background_active_ = false;
      background_done_cv_.SignalAll();
      continue;
    }
    background_done_cv_.SignalAll();
    background_work_cv_.Wait();
  }
  background_done_cv_.SignalAll();
  mutex_.Unlock();
}

void DBImpl::CompactMemTable() {
  assert(imm_ != nullptr);
  std::shared_ptr<MemTable> imm = imm_;

  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);

  Status s;
  {
    mutex_.Unlock();
    IoPurposeScope purpose(IoPurpose::kFlush);
    std::unique_ptr<Iterator> iter(imm->NewIterator());
    s = BuildTable(dbname_, env_, sst_options_, table_cache_.get(), iter.get(), &meta);
    mutex_.Lock();
  }
  pending_outputs_.erase(meta.number);

  if (shutting_down_.load(std::memory_order_acquire)) {
    s = Status::IOError("Deleting DB during memtable compaction");
  }

  VersionEdit edit;
  if (s.ok()) {
    if (meta.file_size > 0) {
      edit.AddFile(0, meta.number, meta.file_size, meta.smallest, meta.largest);
      stats_.flush_count++;
      stats_.flush_bytes_written += meta.file_size;
    }
    edit.SetLogNumber(logfile_number_);  // earlier logs are no longer needed
    s = versions_->LogAndApply(&edit, &mutex_);
  }

  if (s.ok()) {
    imm_ = nullptr;
    RemoveObsoleteFiles();
    // Copy the hook under the mutex; SetEventHooks may swap event_hooks_
    // while the callback runs unlocked.
    auto flush_hook = event_hooks_.on_flush_completed;
    if (flush_hook && meta.file_size > 0) {
      FlushEventInfo info;
      info.bytes_written = meta.file_size;
      mutex_.Unlock();
      flush_hook(info);
      mutex_.Lock();
    }
  } else {
    RecordBackgroundError(s);
  }
}

void DBImpl::BackgroundCompaction() {
  Compaction* c = versions_->PickCompaction();
  if (c == nullptr) {
    return;
  }

  Status status;
  if (options_.compaction_style == CompactionStyle::kLeveled && c->IsTrivialMove()) {
    // Move the file to the next level without rewriting it.
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->level() + 1, f->number, f->file_size, f->smallest, f->largest);
    status = versions_->LogAndApply(c->edit(), &mutex_);
  } else {
    status = DoCompactionWork(c);
  }
  c->ReleaseInputs();
  delete c;

  if (!status.ok()) {
    if (!shutting_down_.load(std::memory_order_acquire)) {
      RecordBackgroundError(status);
    }
  }
  RemoveObsoleteFiles();
}

Status DBImpl::DoCompactionWork(Compaction* c) {
  SequenceNumber smallest_snapshot;
  if (snapshots_.empty()) {
    smallest_snapshot = VisibleSequence();
  } else {
    smallest_snapshot = snapshots_.oldest()->sequence_number();
  }

  const int output_level = c->level() + 1;
  std::vector<FileMetaData> outputs;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  Status status;
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      bytes_read += c->input(which, i)->file_size;
    }
  }

  {
    mutex_.Unlock();
    IoPurposeScope purpose(IoPurpose::kCompaction);

    std::unique_ptr<Iterator> input(versions_->MakeInputIterator(c));
    input->SeekToFirst();

    std::unique_ptr<WritableFile> out_file;
    std::unique_ptr<TableBuilder> builder;
    FileMetaData current_output;

    std::string current_user_key;
    bool has_current_user_key = false;
    SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

    auto finish_output = [&]() -> Status {
      if (builder == nullptr) {
        return Status::OK();
      }
      Status fs = builder->Finish();
      if (fs.ok()) {
        current_output.file_size = builder->FileSize();
        bytes_written += current_output.file_size;
        fs = out_file->Sync();
      }
      if (fs.ok()) {
        fs = out_file->Close();
      }
      builder.reset();
      out_file.reset();
      if (fs.ok() && current_output.file_size > 0) {
        outputs.push_back(current_output);
      }
      return fs;
    };

    for (; input->Valid() && !shutting_down_.load(std::memory_order_acquire); input->Next()) {
      Slice key = input->key();

      // Decide whether the current entry can be dropped.
      bool drop = false;
      ParsedInternalKey ikey;
      if (!ParseInternalKey(key, &ikey)) {
        // Keep corrupted keys so the corruption surfaces to reads.
        current_user_key.clear();
        has_current_user_key = false;
        last_sequence_for_key = kMaxSequenceNumber;
      } else {
        if (!has_current_user_key ||
            internal_comparator_.user_comparator()->Compare(ikey.user_key,
                                                            Slice(current_user_key)) != 0) {
          // First occurrence of this user key.
          current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
          has_current_user_key = true;
          last_sequence_for_key = kMaxSequenceNumber;
        }

        if (last_sequence_for_key <= smallest_snapshot) {
          // Hidden by a newer entry for the same user key.
          drop = true;
        } else if (ikey.type == kTypeDeletion && ikey.sequence <= smallest_snapshot &&
                   c->IsBaseLevelForKey(ikey.user_key)) {
          // No older version of this key exists anywhere below: the
          // tombstone itself can be elided.
          drop = true;
        }

        last_sequence_for_key = ikey.sequence;
      }

      if (!drop) {
        if (builder == nullptr) {
          {
            MutexLock relock(&mutex_);
            current_output = FileMetaData();
            current_output.number = versions_->NewFileNumber();
            pending_outputs_.insert(current_output.number);
          }
          std::string fname = TableFileName(dbname_, current_output.number);
          status = env_->NewWritableFile(fname, &out_file);
          if (!status.ok()) {
            break;
          }
          builder = std::make_unique<TableBuilder>(sst_options_, out_file.get());
        }
        if (builder->NumEntries() == 0) {
          current_output.smallest.DecodeFrom(key);
        }
        current_output.largest.DecodeFrom(key);
        builder->Add(key, input->value());

        if (builder->FileSize() >= c->MaxOutputFileSize()) {
          status = finish_output();
          if (!status.ok()) {
            break;
          }
        }
      }
    }

    if (status.ok() && shutting_down_.load(std::memory_order_acquire)) {
      status = Status::IOError("Deleting DB during compaction");
    }
    if (status.ok()) {
      status = finish_output();
    } else if (builder != nullptr) {
      builder->Abandon();
      builder.reset();
      out_file.reset();
    }
    if (status.ok()) {
      status = input->status();
    }

    mutex_.Lock();
  }

  if (status.ok()) {
    c->AddInputDeletions(c->edit());
    for (const FileMetaData& out : outputs) {
      c->edit()->AddFile(output_level, out.number, out.file_size, out.smallest, out.largest);
    }
    status = versions_->LogAndApply(c->edit(), &mutex_);
  }
  for (const FileMetaData& out : outputs) {
    pending_outputs_.erase(out.number);
  }

  stats_.compaction_count++;
  stats_.compaction_bytes_read += bytes_read;
  stats_.compaction_bytes_written += bytes_written;
  // Copy the hook under the mutex; SetEventHooks may swap event_hooks_
  // while the callback runs unlocked.
  auto compaction_hook = event_hooks_.on_compaction_completed;
  if (compaction_hook && status.ok()) {
    CompactionEventInfo info;
    info.level = c->level();
    info.bytes_read = bytes_read;
    info.bytes_written = bytes_written;
    mutex_.Unlock();
    compaction_hook(info);
    mutex_.Lock();
  }
  return status;
}

void DBImpl::RemoveObsoleteFiles() {
  if (!bg_error_.ok()) {
    // Ownership of the files may be unclear after a background error.
    return;
  }

  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  // A failed listing leaves obsolete files on disk; the next GC pass
  // retries, so nothing is lost by continuing with an empty list.
  env_->GetChildren(dbname_, &filenames).IgnoreError();
  uint64_t number = 0;
  FileType type = FileType::kTempFile;
  std::vector<std::string> files_to_delete;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case FileType::kLogFile:
          keep = (number >= versions_->LogNumber()) || (number == logfile_number_);
          break;
        case FileType::kDescriptorFile:
          keep = (number >= versions_->manifest_file_number());
          break;
        case FileType::kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case FileType::kTempFile:
          keep = (live.find(number) != live.end());
          break;
        case FileType::kCurrentFile:
        case FileType::kLockFile:
          keep = true;
          break;
      }
      if (!keep) {
        files_to_delete.push_back(std::move(filename));
        if (type == FileType::kTableFile) {
          table_cache_->Evict(number);
        }
      }
    }
  }

  for (const std::string& filename : files_to_delete) {
    // GC is best-effort: a file that survives this pass is retried by the
    // next one.
    env_->RemoveFile(dbname_ + "/" + filename).IgnoreError();
  }
}

void DBImpl::RecordBackgroundError(const Status& s) {
  if (bg_error_.ok()) {
    bg_error_ = s;
    background_done_cv_.SignalAll();
  }
}

// ---------------- Maintenance hooks ----------------

void DBImpl::WaitForBackgroundWork() {
  MutexLock lock(&mutex_);
  while (bg_error_.ok() &&
         (imm_ != nullptr || background_active_ ||
          (!options_.debug_disable_background && versions_->NeedsCompaction()))) {
    background_work_cv_.SignalAll();
    background_done_cv_.Wait();
  }
}

Status DBImpl::FlushMemTable() {
  {
    MutexLock lock(&mutex_);
    if (mem_->NumEntries() == 0 && imm_ == nullptr) {
      return Status::OK();
    }
    // Wait until any previous immutable memtable has drained.
    while (imm_ != nullptr && bg_error_.ok()) {
      background_work_cv_.SignalAll();
      background_done_cv_.Wait();
    }
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    while (active_memtable_writers_ > 0) {
      memtable_switch_cv_.Wait();
    }
    if (mem_->NumEntries() > 0) {
      uint64_t new_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> lfile;
      Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
      if (!s.ok()) {
        return s;
      }
      // The retired WAL is fully synced (or async by contract); a close
      // error cannot lose acknowledged data, and the memtable it covers is
      // being sealed for flush anyway.
      logfile_->Close().IgnoreError();
      logfile_ = std::move(lfile);
      logfile_number_ = new_log_number;
      log_ = std::make_unique<log::Writer>(logfile_.get());
      imm_ = mem_;
      mem_ = std::make_shared<MemTable>(internal_comparator_);
      MaybeScheduleCompaction();
    }
  }
  WaitForBackgroundWork();
  MutexLock lock(&mutex_);
  return bg_error_;
}

Status DBImpl::Resume() {
  {
    MutexLock lock(&mutex_);
    if (bg_error_.ok()) {
      return Status::OK();
    }
    while (active_memtable_writers_ > 0) {
      memtable_switch_cv_.Wait();
    }
    // The tail of the current WAL is in an unknown state after a failed
    // append/sync, so start a fresh log before accepting new writes. The
    // surviving memtable (acknowledged writes only; a failed group is never
    // inserted) is frozen for re-flush, which supersedes the torn log via
    // VersionEdit::SetLogNumber.
    uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) {
      return s;
    }
    // Same contract as the rotation above: the retired WAL's acknowledged
    // records are already durable.
    logfile_->Close().IgnoreError();
    logfile_ = std::move(lfile);
    logfile_number_ = new_log_number;
    log_ = std::make_unique<log::Writer>(logfile_.get());
    if (mem_->NumEntries() > 0 && imm_ == nullptr) {
      imm_ = mem_;
      mem_ = std::make_shared<MemTable>(internal_comparator_);
    }
    bg_error_ = Status::OK();
    MaybeScheduleCompaction();
  }
  // Drive the re-flush; if it fails the background thread re-records the
  // error and it is returned here.
  WaitForBackgroundWork();
  MutexLock lock(&mutex_);
  return bg_error_;
}

DbStats DBImpl::GetStats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void DBImpl::SetEventHooks(const EngineEventHooks& hooks) {
  MutexLock lock(&mutex_);
  event_hooks_ = hooks;
}

void DBImpl::NotifyStall(uint64_t stall_micros) {
  // Copy the hook before dropping the mutex: firing the stale pointer read
  // `event_hooks_.on_write_stalled(info)` after the unlock raced a
  // concurrent SetEventHooks (surfaced by the GUARDED_BY annotation).
  auto stall_hook = event_hooks_.on_write_stalled;
  if (!stall_hook || stall_micros == 0) {
    return;
  }
  StallEventInfo info;
  info.stall_micros = stall_micros;
  mutex_.Unlock();
  stall_hook(info);
  mutex_.Lock();
}

std::string DBImpl::LevelFilesSummary() const {
  MutexLock lock(&mutex_);
  return versions_->LevelSummary();
}

size_t DBImpl::ApproximateMemoryUsage() const {
  MutexLock lock(&mutex_);
  size_t total = 0;
  if (mem_ != nullptr) {
    total += mem_->ApproximateMemoryUsage();
  }
  if (imm_ != nullptr) {
    total += imm_->ApproximateMemoryUsage();
  }
  if (block_cache_ != nullptr) {
    total += block_cache_->TotalCharge();
  }
  return total;
}

}  // namespace p2kvs
