// Merging iterator: presents N child iterators (memtables, L0 files, level
// runs) as one sorted stream. Also reused by compaction and by p2KVS's
// global SCAN merge across instances.

#ifndef P2KVS_SRC_LSM_MERGING_ITERATOR_H_
#define P2KVS_SRC_LSM_MERGING_ITERATOR_H_

#include "src/util/comparator.h"
#include "src/util/iterator.h"

namespace p2kvs {

// Takes ownership of children[0..n-1]. An empty list yields an empty
// iterator.
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children, int n);

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_MERGING_ITERATOR_H_
