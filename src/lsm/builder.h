// BuildTable: writes the contents of a memtable iterator to a new SST
// (minor compaction / flush).

#ifndef P2KVS_SRC_LSM_BUILDER_H_
#define P2KVS_SRC_LSM_BUILDER_H_

#include <string>

#include "src/lsm/options.h"
#include "src/lsm/table_cache.h"
#include "src/lsm/version_edit.h"
#include "src/sst/sst_options.h"
#include "src/util/iterator.h"

namespace p2kvs {

// Builds an SST from *iter (which must yield internal keys in order) into
// the file named by meta->number. On success fills *meta; an empty input
// produces meta->file_size == 0 and no file.
Status BuildTable(const std::string& dbname, Env* env, const SstOptions& sst_options,
                  TableCache* table_cache, Iterator* iter, FileMetaData* meta);

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_BUILDER_H_
