// Version / VersionSet: the immutable snapshot of the SST file tree and the
// machinery that evolves it (MANIFEST logging, compaction picking).
//
// Two level shapes are supported (Options::compaction_style):
//  * kLeveled — L0 overlapping, L1+ sorted & disjoint (RocksDB/LevelDB).
//  * kTiered  — every level holds overlapping runs; full levels are merged
//    and pushed down without rewriting the next level (the PebblesDB-style
//    fragmented LSM used as a baseline in the paper's Figure 12).

#ifndef P2KVS_SRC_LSM_VERSION_SET_H_
#define P2KVS_SRC_LSM_VERSION_SET_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/io/async_io.h"
#include "src/lsm/options.h"
#include "src/lsm/table_cache.h"
#include "src/lsm/version_edit.h"
#include "src/util/iterator.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_writer.h"

namespace p2kvs {

class Compaction;
class VersionSet;

// Returns the index of the first file in `files` whose largest key is >= key;
// requires disjoint, sorted files.
int FindFile(const InternalKeyComparator& icmp, const std::vector<FileMetaData*>& files,
             const Slice& key);

// True iff some file in `files` overlaps [smallest_user_key, largest_user_key]
// (either bound may be null = unbounded).
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp, bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files, const Slice* smallest_user_key,
                           const Slice* largest_user_key);

// One key of a batched lookup (DB::MultiGet) that fell through the
// memtables. `done` flips when the key resolves (found / deleted / error);
// keys still pending after the last level resolve to NotFound.
struct GetBatchItem {
  const LookupKey* key = nullptr;
  std::string* value = nullptr;
  Status status;  // meaningful once done
  bool done = false;
};

class Version {
 public:
  // Point lookup through the file tree; newest data shadows older.
  Status Get(const ReadOptions&, const LookupKey& key, std::string* val);

  // Batched point lookup: semantically Get() per item, but each level round
  // plans every pending key first (index seek + bloom + block cache) and
  // submits all the uncached data-block reads to `io` together, so the device
  // sees the batch's queue depth instead of one read at a time.
  void MultiGet(const ReadOptions&, AsyncIoContext* io, std::vector<GetBatchItem*>& items);

  // Appends iterators that together cover this version's contents.
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  void Ref();
  void Unref();

  int NumFiles(int level) const { return static_cast<int>(files_[level].size()); }

  const std::vector<FileMetaData*>& files(int level) const { return files_[level]; }

  // True if level keeps overlapping files (always searched newest-first).
  bool LevelIsOverlapped(int level) const;

  // Fills *inputs with all files in `level` overlapping [begin,end].
  void GetOverlappingInputs(int level, const InternalKey* begin, const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  std::string DebugString() const;

 private:
  friend class Compaction;
  friend class VersionSet;

  explicit Version(VersionSet* vset)
      : vset_(vset), next_(this), prev_(this), refs_(0), compaction_score_(-1),
        compaction_level_(-1) {}
  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  VersionSet* vset_;  // VersionSet to which this Version belongs
  Version* next_;     // Next version in linked list
  Version* prev_;     // Previous version in linked list
  int refs_;          // Number of live refs to this version

  // List of files per level; overlapped levels are ordered newest-first,
  // sorted levels by smallest key.
  std::vector<FileMetaData*> files_[kNumLevels];

  // Level that should be compacted next and its score (>= 1 means needed);
  // filled in by VersionSet::Finalize().
  double compaction_score_;
  int compaction_level_;
};

class VersionSet {
 public:
  VersionSet(std::string dbname, const Options* options, TableCache* table_cache,
             const InternalKeyComparator*);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  // Applies *edit to the current version, persisting it to the MANIFEST.
  // Releases `mu` during the MANIFEST IO and reacquires it before returning.
  Status LogAndApply(VersionEdit* edit, Mutex* mu) REQUIRES(mu);

  // Recovers the last saved state from the MANIFEST.
  Status Recover();

  Version* current() const { return current_; }

  uint64_t manifest_file_number() const { return manifest_file_number_; }
  uint64_t NewFileNumber() { return next_file_number_++; }

  uint64_t LastSequence() const { return last_sequence_; }
  void SetLastSequence(uint64_t s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }

  uint64_t LogNumber() const { return log_number_; }

  // Picks the most urgent compaction, or nullptr if none is needed.
  Compaction* PickCompaction();

  bool NeedsCompaction() const {
    return current_->compaction_score_ >= 1;
  }

  // Iterator reading all compaction input entries in order.
  Iterator* MakeInputIterator(Compaction* c);

  void AddLiveFiles(std::set<uint64_t>* live);

  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;

  // One-line summary of files per level, e.g. "files[ 2 4 0 0 0 0 0 ]".
  std::string LevelSummary() const;

  const InternalKeyComparator* icmp() const { return icmp_; }
  const Options* options() const { return options_; }
  TableCache* table_cache() const { return table_cache_; }

  uint64_t MaxFileSizeForLevel(int /*level*/) const { return options_->target_file_size; }

 private:
  class Builder;
  friend class Compaction;
  friend class Version;

  void Finalize(Version* v);
  void AppendVersion(Version* v);
  Status WriteSnapshot(log::Writer* log);
  double MaxBytesForLevel(int level) const;

  Env* const env_;
  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator* icmp_;
  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  uint64_t last_sequence_ = 0;
  uint64_t log_number_ = 0;

  // Opened lazily.
  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  Version dummy_versions_;  // head of circular doubly-linked list of versions
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next leveled compaction should start.
  std::string compact_pointer_[kNumLevels];
};

// A planned compaction: inputs_[0] from `level`, inputs_[1] from `level+1`
// (empty in tiered mode).
class Compaction {
 public:
  ~Compaction();

  int level() const { return level_; }
  VersionEdit* edit() { return &edit_; }

  int num_input_files(int which) const { return static_cast<int>(inputs_[which].size()); }
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }

  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  // True iff the compaction can be implemented by moving a single input file
  // to the next level without merging.
  bool IsTrivialMove() const;

  // Adds all inputs as deletions to *edit.
  void AddInputDeletions(VersionEdit* edit);

  // True if all data in levels > level()+1 lacks user_key (so a deletion
  // tombstone for it can be dropped).
  bool IsBaseLevelForKey(const Slice& user_key);

  void ReleaseInputs();

 private:
  friend class VersionSet;

  Compaction(const Options* options, int level);

  int level_;
  uint64_t max_output_file_size_;
  Version* input_version_;
  VersionEdit edit_;

  std::vector<FileMetaData*> inputs_[2];

  // State for IsBaseLevelForKey (advances through files since keys are
  // visited in order).
  size_t level_ptrs_[kNumLevels];
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_VERSION_SET_H_
