// DBIter: wraps a merged internal-key iterator and exposes the user-visible
// view — per-key newest visible version, deletions collapsed, both
// directions.

#ifndef P2KVS_SRC_LSM_DB_ITER_H_
#define P2KVS_SRC_LSM_DB_ITER_H_

#include "src/memtable/dbformat.h"
#include "src/util/iterator.h"

namespace p2kvs {

// Takes ownership of internal_iter. `sequence` bounds visibility.
Iterator* NewDBIterator(const Comparator* user_key_comparator, Iterator* internal_iter,
                        SequenceNumber sequence);

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_DB_ITER_H_
