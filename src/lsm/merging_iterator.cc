#include "src/lsm/merging_iterator.h"

#include <memory>
#include <vector>

namespace p2kvs {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), current_(nullptr), direction_(kForward) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  bool Valid() const override { return (current_ != nullptr); }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());

    // All non-current children must be positioned after key(); if we were
    // moving backwards, reposition them first.
    if (direction_ != kForward) {
      for (auto& childp : children_) {
        Iterator* child = childp.get();
        if (child != current_) {
          child->Seek(key());
          if (child->Valid() && comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }

    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());

    if (direction_ != kReverse) {
      for (auto& childp : children_) {
        Iterator* child = childp.get();
        if (child != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Entry >= key(); step back to be < key().
            child->Prev();
          } else {
            // Everything in child is < key(); position at its last entry.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }

    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }
  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& childp : children_) {
      Iterator* child = childp.get();
      if (child->Valid()) {
        if (smallest == nullptr || comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child;
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& childp : children_) {
      Iterator* child = childp.get();
      if (child->Valid()) {
        if (largest == nullptr || comparator_->Compare(child->key(), largest->key()) > 0) {
          largest = child;
        }
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children, int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  }
  if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace p2kvs
