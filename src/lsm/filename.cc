#include "src/lsm/filename.h"

#include <cassert>
#include <cstdio>

namespace p2kvs {

static std::string MakeFileName(const std::string& dbname, uint64_t number, const char* suffix) {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s", static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "sst");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu", static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) { return dbname + "/CURRENT"; }

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "dbtmp");
}

bool ParseFileName(const std::string& filename, uint64_t* number, FileType* type) {
  Slice rest(filename);
  if (rest == Slice("CURRENT")) {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (rest == Slice("LOCK")) {
    *number = 0;
    *type = FileType::kLockFile;
    return true;
  }
  if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    if (rest.empty()) {
      return false;
    }
    for (size_t i = 0; i < rest.size(); i++) {
      char c = rest[i];
      if (c < '0' || c > '9') {
        return false;
      }
      num = num * 10 + static_cast<uint64_t>(c - '0');
    }
    *number = num;
    *type = FileType::kDescriptorFile;
    return true;
  }

  // <number>.<suffix>
  uint64_t num = 0;
  size_t i = 0;
  for (; i < rest.size() && rest[i] >= '0' && rest[i] <= '9'; i++) {
    num = num * 10 + static_cast<uint64_t>(rest[i] - '0');
  }
  if (i == 0 || i >= rest.size() || rest[i] != '.') {
    return false;
  }
  Slice suffix(rest.data() + i, rest.size() - i);
  if (suffix == Slice(".log")) {
    *type = FileType::kLogFile;
  } else if (suffix == Slice(".sst")) {
    *type = FileType::kTableFile;
  } else if (suffix == Slice(".dbtmp")) {
    *type = FileType::kTempFile;
  } else {
    return false;
  }
  *number = num;
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname, uint64_t descriptor_number) {
  // Contents of CURRENT: "MANIFEST-<num>\n".
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.starts_with(dbname + "/"));
  contents.remove_prefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);
  Status s = WriteStringToFile(env, contents.ToString() + "\n", tmp, true);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (!s.ok()) {
    // Best-effort cleanup of the temp file; the write/rename error is what
    // the caller needs to see.
    env->RemoveFile(tmp).IgnoreError();
  }
  return s;
}

}  // namespace p2kvs
