// File naming for an LSM instance directory:
//   CURRENT, MANIFEST-<num>, <num>.log (WAL), <num>.sst, LOCK.

#ifndef P2KVS_SRC_LSM_FILENAME_H_
#define P2KVS_SRC_LSM_FILENAME_H_

#include <cstdint>
#include <string>

#include "src/io/env.h"
#include "src/util/status.h"

namespace p2kvs {

enum class FileType {
  kLogFile,
  kTableFile,
  kDescriptorFile,
  kCurrentFile,
  kLockFile,
  kTempFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

// Parses a file name (no directory part). Returns true and fills outputs on
// success.
bool ParseFileName(const std::string& filename, uint64_t* number, FileType* type);

// Atomically points CURRENT at the given manifest file.
Status SetCurrentFile(Env* env, const std::string& dbname, uint64_t descriptor_number);

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_FILENAME_H_
