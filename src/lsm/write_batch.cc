#include "src/lsm/write_batch.h"

#include "src/memtable/memtable.h"
#include "src/util/coding.h"

namespace p2kvs {

// Header: 8-byte sequence + 4-byte count.
static const size_t kWriteBatchHeader = 12;

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kWriteBatchHeader);
}

int WriteBatch::Count() const { return WriteBatchInternal::Count(this); }

void WriteBatch::Put(const Slice& key, const Slice& value) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& src) { WriteBatchInternal::Append(this, &src); }

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kWriteBatchHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }

  input.remove_prefix(kWriteBatchHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    switch (tag) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) && GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != WriteBatchInternal::Count(this)) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

int WriteBatchInternal::Count(const WriteBatch* b) { return DecodeFixed32(b->rep_.data() + 8); }

void WriteBatchInternal::SetCount(WriteBatch* b, int n) {
  EncodeFixed32(&b->rep_[8], static_cast<uint32_t>(n));
}

SequenceNumber WriteBatchInternal::Sequence(const WriteBatch* b) {
  return SequenceNumber(DecodeFixed64(b->rep_.data()));
}

void WriteBatchInternal::SetSequence(WriteBatch* b, SequenceNumber seq) {
  EncodeFixed64(&b->rep_[0], seq);
}

void WriteBatchInternal::SetContents(WriteBatch* b, const Slice& contents) {
  assert(contents.size() >= kWriteBatchHeader);
  b->rep_.assign(contents.data(), contents.size());
}

void WriteBatchInternal::Append(WriteBatch* dst, const WriteBatch* src) {
  SetCount(dst, Count(dst) + Count(src));
  assert(src->rep_.size() >= kWriteBatchHeader);
  dst->rep_.append(src->rep_.data() + kWriteBatchHeader,
                   src->rep_.size() - kWriteBatchHeader);
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* mem;
  bool concurrent;

  void Put(const Slice& key, const Slice& value) override {
    mem->Add(sequence, kTypeValue, key, value, concurrent);
    sequence++;
  }
  void Delete(const Slice& key) override {
    mem->Add(sequence, kTypeDeletion, key, Slice(), concurrent);
    sequence++;
  }
};

}  // namespace

Status WriteBatchInternal::InsertInto(const WriteBatch* batch, MemTable* memtable,
                                      bool concurrent) {
  MemTableInserter inserter;
  inserter.sequence = WriteBatchInternal::Sequence(batch);
  inserter.mem = memtable;
  inserter.concurrent = concurrent;
  return batch->Iterate(&inserter);
}

}  // namespace p2kvs
