// VersionEdit: a delta applied to the LSM file set, serialized into the
// MANIFEST. FileMetaData describes one SST.

#ifndef P2KVS_SRC_LSM_VERSION_EDIT_H_
#define P2KVS_SRC_LSM_VERSION_EDIT_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/memtable/dbformat.h"
#include "src/util/status.h"

namespace p2kvs {

// Number of on-disk levels.
static const int kNumLevels = 7;

struct FileMetaData {
  int refs = 0;
  uint64_t number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
};

class VersionEdit {
 public:
  VersionEdit() { Clear(); }

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }

  // Adds the described SST at the given level.
  void AddFile(int level, uint64_t file, uint64_t file_size, const InternalKey& smallest,
               const InternalKey& largest) {
    FileMetaData f;
    f.number = file;
    f.file_size = file_size;
    f.smallest = smallest;
    f.largest = largest;
    new_files_.push_back(std::make_pair(level, f));
  }

  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

 private:
  friend class VersionSet;

  using DeletedFileSet = std::set<std::pair<int, uint64_t>>;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;

  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_VERSION_EDIT_H_
