#include "src/lsm/table_cache.h"

#include "src/lsm/filename.h"
#include "src/util/coding.h"

namespace p2kvs {

struct TableAndFile {
  std::unique_ptr<Table> table;
};

static void DeleteEntry(const Slice& /*key*/, void* value) {
  delete reinterpret_cast<TableAndFile*>(value);
}

TableCache::TableCache(std::string dbname, const Options& options, const SstOptions& sst_options,
                       int entries)
    : dbname_(std::move(dbname)),
      options_(options),
      sst_options_(sst_options),
      cache_(NewLRUCache(entries)) {}

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle** handle) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) {
    return Status::OK();
  }

  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = options_.env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<Table> table;
  s = Table::Open(sst_options_, std::move(file), file_size, &table);
  if (!s.ok()) {
    return s;
  }
  auto tf = new TableAndFile;
  tf->table = std::move(table);
  *handle = cache_->Insert(key, tf, 1, &DeleteEntry);
  return Status::OK();
}

Iterator* TableCache::NewIterator(uint64_t file_number, uint64_t file_size, Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table.get();
  Iterator* result = table->NewIterator();
  Cache* cache = cache_.get();
  result->RegisterCleanup([cache, handle] { cache->Release(handle); });
  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return result;
}

Status TableCache::Get(uint64_t file_number, uint64_t file_size, const Slice& internal_key,
                       const std::function<void(const Slice&, const Slice&)>& handle_result) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (s.ok()) {
    Table* table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table.get();
    s = table->InternalGet(internal_key, handle_result);
    cache_->Release(handle);
  }
  return s;
}

Status TableCache::GetTable(uint64_t file_number, uint64_t file_size, Cache::Handle** handle,
                            Table** table) {
  *handle = nullptr;
  *table = nullptr;
  Status s = FindTable(file_number, file_size, handle);
  if (s.ok()) {
    *table = reinterpret_cast<TableAndFile*>(cache_->Value(*handle))->table.get();
  }
  return s;
}

void TableCache::ReleaseTable(Cache::Handle* handle) { cache_->Release(handle); }

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace p2kvs
