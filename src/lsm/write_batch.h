// WriteBatch: an ordered bundle of Put/Delete operations applied atomically.
// Serialization format (also the WAL payload):
//   sequence (8B fixed) | count (4B fixed) | records...
//   record := kTypeValue   varstring(key) varstring(value)
//           | kTypeDeletion varstring(key)
// p2KVS's opportunistic batching (Algorithm 1) builds one of these per merged
// run of write requests.

#ifndef P2KVS_SRC_LSM_WRITE_BATCH_H_
#define P2KVS_SRC_LSM_WRITE_BATCH_H_

#include <string>

#include "src/memtable/dbformat.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();
  ~WriteBatch() = default;

  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  // Number of operations in the batch.
  int Count() const;

  // Serialized size in bytes.
  size_t ApproximateSize() const { return rep_.size(); }

  // Applies every operation via handler callbacks in insertion order.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // Appends the operations of `src` to this batch.
  void Append(const WriteBatch& src);

 private:
  friend class WriteBatchInternal;

  std::string rep_;
};

// Engine-internal accessors (not part of the public surface).
class WriteBatchInternal {
 public:
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);
  static SequenceNumber Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, SequenceNumber seq);

  static Slice Contents(const WriteBatch* batch) { return Slice(batch->rep_); }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);

  // Inserts the batch's entries into *memtable, using sequence numbers
  // starting at Sequence(batch). `concurrent` selects the CAS insert path.
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable, bool concurrent);

  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_WRITE_BATCH_H_
