// InternalFilterPolicy: adapts a user-key filter policy to internal keys by
// stripping the 8-byte (sequence|type) tag. Without this, bloom probes made
// with a lookup tag would never match keys written with their own sequence.

#ifndef P2KVS_SRC_LSM_INTERNAL_FILTER_POLICY_H_
#define P2KVS_SRC_LSM_INTERNAL_FILTER_POLICY_H_

#include <vector>

#include "src/memtable/dbformat.h"
#include "src/sst/filter_policy.h"

namespace p2kvs {

class InternalFilterPolicy final : public FilterPolicy {
 public:
  // Does not take ownership of p.
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}

  const char* Name() const override { return user_policy_->Name(); }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    std::vector<Slice> user_keys(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
      user_keys[i] = ExtractUserKey(keys[i]);
    }
    user_policy_->CreateFilter(user_keys.data(), n, dst);
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return user_policy_->KeyMayMatch(ExtractUserKey(key), filter);
  }

 private:
  const FilterPolicy* user_policy_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_INTERNAL_FILTER_POLICY_H_
