// DBImpl: the LSM engine. Reproduces the RocksDB mechanisms the paper's
// analysis depends on:
//   * writer queue with leader election and group logging (Figure 3),
//   * concurrent MemTable insertion by the group's followers,
//   * pipelined write (next group's WAL overlaps this group's MemTable),
//   * write slowdown/stop on L0 buildup, background flush & compaction,
//   * MultiGet, snapshots, WriteBatch,
//   * per-thread write latency breakdown (WAL / MemTable / WAL lock /
//     MemTable lock) feeding Figure 6.
//
// Locking contract: every field below is either annotated GUARDED_BY(mutex_)
// (compiler-checked under -DP2KVS_THREAD_SAFETY=ON with clang) or carries a
// comment naming the protocol that makes unlocked access safe. Methods that
// assume the lock say so with REQUIRES(mutex_) instead of prose.

#ifndef P2KVS_SRC_LSM_DB_IMPL_H_
#define P2KVS_SRC_LSM_DB_IMPL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "src/io/async_io.h"
#include "src/lsm/builder.h"
#include "src/lsm/db.h"
#include "src/lsm/snapshot.h"
#include "src/lsm/version_set.h"
#include "src/memtable/memtable.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_writer.h"

namespace p2kvs {

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname, GsnRecoveryFilter recovery_filter);
  ~DBImpl() override;

  Status Put(const WriteOptions&, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions&, WriteBatch* updates) override;
  Status Get(const ReadOptions&, const Slice& key, std::string* value) override;
  std::vector<Status> MultiGet(const ReadOptions&, const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  void WaitForBackgroundWork() override;
  Status FlushMemTable() override;
  Status Resume() override;
  DbStats GetStats() const override;
  void SetEventHooks(const EngineEventHooks& hooks) override;
  std::string LevelFilesSummary() const override;
  size_t ApproximateMemoryUsage() const override;

 private:
  friend class DB;

  struct Writer;

  Status Recover(GsnRecoveryFilter filter) EXCLUDES(mutex_);
  Status NewDB();
  Status RecoverLogFile(uint64_t log_number, GsnRecoveryFilter filter,
                        SequenceNumber* max_sequence) REQUIRES(mutex_);
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit) REQUIRES(mutex_);

  // May release and reacquire mutex_ (slowdown sleep, stall waits, WAL
  // switch), but holds it on entry and exit.
  Status MakeRoomForWrite(bool force) REQUIRES(mutex_);
  // On return the leader is still the queue front.
  WriteBatch* BuildBatchGroup(Writer** last_writer, uint64_t* group_gsn) REQUIRES(mutex_);

  void MaybeScheduleCompaction() REQUIRES(mutex_);
  void BackgroundThreadMain() EXCLUDES(mutex_);
  // The three compaction entry points release mutex_ around their IO and
  // reacquire it before returning.
  void CompactMemTable() REQUIRES(mutex_);
  void BackgroundCompaction() REQUIRES(mutex_);
  Status DoCompactionWork(Compaction* c) REQUIRES(mutex_);
  void RemoveObsoleteFiles() REQUIRES(mutex_);
  void RecordBackgroundError(const Status& s) REQUIRES(mutex_);
  // Fires on_write_stalled with mutex_ temporarily released (the hook is
  // copied first so SetEventHooks cannot race the unlocked call).
  void NotifyStall(uint64_t stall_micros) REQUIRES(mutex_);

  // Blocks until every sequence before `first_seq` is visible, then makes
  // [first_seq, last_seq] visible. Keeps pipelined groups publishing in
  // commit order.
  void PublishSequence(SequenceNumber first_seq, SequenceNumber last_seq)
      EXCLUDES(publish_mutex_);

  SequenceNumber VisibleSequence() const {
    return visible_sequence_.load(std::memory_order_acquire);
  }

  // Constant after construction.
  Options options_;
  const std::string dbname_;
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  std::unique_ptr<Cache> block_cache_;
  SstOptions sst_options_;
  std::unique_ptr<const FilterPolicy> user_filter_policy_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<TableCache> table_cache_;
  // Async submission/completion context (batched MultiGet block reads, async
  // WAL sync). Null when Options::async_io is off; the context itself is
  // thread-safe, so concurrent readers share it freely.
  std::unique_ptr<AsyncIoContext> io_ctx_;

  mutable Mutex mutex_;
  std::atomic<bool> shutting_down_{false};

  std::shared_ptr<MemTable> mem_ GUARDED_BY(mutex_);
  // Memtable being flushed. Readers copy the shared_ptr under mutex_ and
  // search the copy unlocked (MemTable itself is an immutable-after-switch
  // concurrent structure).
  std::shared_ptr<MemTable> imm_ GUARDED_BY(mutex_);

  // WAL handles. Not GUARDED_BY: only the current group leader touches them
  // between its promotion and its retirement, and leaders are serialized by
  // the writer queue; switches happen in MakeRoomForWrite/FlushMemTable/
  // Resume with mutex_ held and no leader in its WAL phase.
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ GUARDED_BY(mutex_) = 0;
  std::unique_ptr<log::Writer> log_;

  // Writer queue (paper Figure 3).
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  // Scratch batch for group merges. Mutated only under mutex_; the leader
  // also reads it *unlocked* through its write_batch alias during the WAL
  // phase (invisible to the analysis), which is safe because the batch is
  // cleared and handed over before the next leader is promoted.
  WriteBatch tmp_batch_ GUARDED_BY(mutex_);

  // Number of groups currently inserting into mem_ outside the mutex
  // (pipelined mode); memtable switches wait for it to drain.
  int active_memtable_writers_ GUARDED_BY(mutex_) = 0;
  CondVar memtable_switch_cv_{&mutex_};

  // Sequence publication (pipelined ordering).
  std::atomic<uint64_t> visible_sequence_{0};
  Mutex publish_mutex_ ACQUIRED_AFTER(mutex_);
  CondVar publish_cv_{&publish_mutex_};

  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Files being generated by flush/compaction (protected from GC).
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  // Background work. The thread handle itself is managed only by the
  // open/close path (Recover starts it, the destructor joins it).
  std::thread background_thread_;
  CondVar background_work_cv_{&mutex_};  // wakes the bg thread
  CondVar background_done_cv_{&mutex_};  // wakes waiters
  bool background_active_ GUARDED_BY(mutex_) = false;
  Status bg_error_ GUARDED_BY(mutex_);

  DbStats stats_ GUARDED_BY(mutex_);

  // Observability callbacks. Hooks are fired with mutex_ released so
  // installers may call back into the DB; callers copy the std::function
  // under the lock first.
  EngineEventHooks event_hooks_ GUARDED_BY(mutex_);

  // Pointer set once in the constructor. The pointee's mutable state is
  // protected by mutex_ (LogAndApply takes it as REQUIRES); the read-only
  // iteration in DoCompactionWork runs unlocked on the single background
  // thread against a Ref()ed version.
  std::unique_ptr<VersionSet> versions_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_DB_IMPL_H_
