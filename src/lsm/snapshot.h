// Snapshots: a doubly-linked list of pinned sequence numbers. Compactions
// preserve the newest entry at or below every live snapshot.

#ifndef P2KVS_SRC_LSM_SNAPSHOT_H_
#define P2KVS_SRC_LSM_SNAPSHOT_H_

#include <cassert>

#include "src/memtable/dbformat.h"

namespace p2kvs {

// Abstract handle returned to users.
class Snapshot {
 public:
  virtual ~Snapshot() = default;
};

class SnapshotList;

class SnapshotImpl final : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence_number)
      : sequence_number_(sequence_number) {}

  SequenceNumber sequence_number() const { return sequence_number_; }

 private:
  friend class SnapshotList;

  SnapshotImpl* prev_ = nullptr;
  SnapshotImpl* next_ = nullptr;

  const SequenceNumber sequence_number_;
};

class SnapshotList {
 public:
  SnapshotList() : head_(0) {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool empty() const { return head_.next_ == &head_; }
  SnapshotImpl* oldest() const {
    assert(!empty());
    return head_.next_;
  }
  SnapshotImpl* newest() const {
    assert(!empty());
    return head_.prev_;
  }

  SnapshotImpl* New(SequenceNumber sequence_number) {
    assert(empty() || newest()->sequence_number_ <= sequence_number);
    SnapshotImpl* snapshot = new SnapshotImpl(sequence_number);
    snapshot->next_ = &head_;
    snapshot->prev_ = head_.prev_;
    snapshot->prev_->next_ = snapshot;
    snapshot->next_->prev_ = snapshot;
    return snapshot;
  }

  void Delete(const SnapshotImpl* snapshot) {
    snapshot->prev_->next_ = snapshot->next_;
    snapshot->next_->prev_ = snapshot->prev_;
    delete snapshot;
  }

 private:
  SnapshotImpl head_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_SNAPSHOT_H_
