#include "src/lsm/builder.h"

#include "src/lsm/filename.h"
#include "src/sst/table_builder.h"

namespace p2kvs {

Status BuildTable(const std::string& dbname, Env* env, const SstOptions& sst_options,
                  TableCache* table_cache, Iterator* iter, FileMetaData* meta) {
  Status s;
  meta->file_size = 0;
  iter->SeekToFirst();

  std::string fname = TableFileName(dbname, meta->number);
  if (iter->Valid()) {
    std::unique_ptr<WritableFile> file;
    s = env->NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }

    TableBuilder builder(sst_options, file.get());
    meta->smallest.DecodeFrom(iter->key());
    Slice key;
    for (; iter->Valid(); iter->Next()) {
      key = iter->key();
      builder.Add(key, iter->value());
    }
    if (!key.empty()) {
      meta->largest.DecodeFrom(key);
    }

    // Finish and check for builder errors.
    s = builder.Finish();
    if (s.ok()) {
      meta->file_size = builder.FileSize();
      assert(meta->file_size > 0);
    } else {
      builder.Abandon();
    }

    // Finish and check for file errors.
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }

    if (s.ok()) {
      // Verify that the table is usable.
      std::unique_ptr<Iterator> it(table_cache->NewIterator(meta->number, meta->file_size));
      s = it->status();
    }
  }

  // Check for input iterator errors.
  if (!iter->status().ok()) {
    s = iter->status();
  }

  if (s.ok() && meta->file_size > 0) {
    // Keep it.
  } else {
    // Best-effort cleanup of the abandoned table file; obsolete-file GC
    // sweeps up anything that survives.
    env->RemoveFile(fname).IgnoreError();
  }
  return s;
}

}  // namespace p2kvs
