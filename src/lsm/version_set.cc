#include "src/lsm/version_set.h"

#include <algorithm>
#include <cstdio>

#include "src/lsm/filename.h"
#include "src/lsm/merging_iterator.h"
#include "src/sst/two_level_iterator.h"
#include "src/util/coding.h"
#include "src/wal/log_reader.h"

namespace p2kvs {

namespace {

// Total bytes across a version's files at `level`.
int64_t NumLevelBytesOf(const Version* v, int level);

// Stores the minimal internal-key range covering all of `inputs`.
void GetRangeOf(const InternalKeyComparator& icmp, const std::vector<FileMetaData*>& inputs,
                InternalKey* smallest, InternalKey* largest);

}  // namespace

int FindFile(const InternalKeyComparator& icmp, const std::vector<FileMetaData*>& files,
             const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return static_cast<int>(right);
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key, const FileMetaData* f) {
  return (user_key != nullptr && ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key, const FileMetaData* f) {
  return (user_key != nullptr && ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp, bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files, const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Check all files.
    for (FileMetaData* f : files) {
      if (!(AfterFile(ucmp, smallest_user_key, f) || BeforeFile(ucmp, largest_user_key, f))) {
        return true;
      }
    }
    return false;
  }

  // Binary search over disjoint files.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber, kValueTypeForSeek);
    index = static_cast<uint32_t>(FindFile(icmp, files, small_key.Encode()));
  }
  if (index >= files.size()) {
    return false;
  }
  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

Version::~Version() {
  assert(refs_ == 0);
  // Remove from linked list.
  prev_->next_ = next_;
  next_->prev_ = prev_;
  // Drop file references.
  for (int level = 0; level < kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

bool Version::LevelIsOverlapped(int level) const {
  if (vset_->options()->compaction_style == CompactionStyle::kTiered) {
    return true;
  }
  return level == 0;
}

// Iterator over the file list of a sorted level: key = largest key of a
// file, value = encoded (number, size). Feeds a two-level iterator.
class LevelFileNumIterator final : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp, const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {}

  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = static_cast<size_t>(FindFile(icmp_, *flist_, target));
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = flist_->empty() ? 0 : flist_->size() - 1; }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  size_t index_;
  mutable char value_buf_[16];
};

Iterator* Version::NewConcatenatingIterator(const ReadOptions& /*options*/, int level) const {
  TableCache* cache = vset_->table_cache();
  return NewTwoLevelIterator(new LevelFileNumIterator(*vset_->icmp(), &files_[level]),
                             [cache](const Slice& file_value) -> Iterator* {
                               if (file_value.size() != 16) {
                                 return NewErrorIterator(
                                     Status::Corruption("FileReader invoked with bad value"));
                               }
                               return cache->NewIterator(DecodeFixed64(file_value.data()),
                                                         DecodeFixed64(file_value.data() + 8));
                             });
}

void Version::AddIterators(const ReadOptions& options, std::vector<Iterator*>* iters) {
  for (int level = 0; level < kNumLevels; level++) {
    if (files_[level].empty()) {
      continue;
    }
    if (LevelIsOverlapped(level)) {
      // Every overlapping file gets its own iterator.
      for (FileMetaData* f : files_[level]) {
        iters->push_back(vset_->table_cache()->NewIterator(f->number, f->file_size));
      }
    } else {
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

namespace {

enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};

struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
};

void SaveValue(Saver* s, const Slice& ikey, const Slice& v) {
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
    return;
  }
  if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
    s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
    if (s->state == kFound) {
      s->value->assign(v.data(), v.size());
    }
  }
}

bool NewestFirst(FileMetaData* a, FileMetaData* b) { return a->number > b->number; }

}  // namespace

Status Version::Get(const ReadOptions& /*options*/, const LookupKey& k, std::string* value) {
  const InternalKeyComparator* icmp = vset_->icmp();
  const Comparator* ucmp = icmp->user_comparator();
  Slice ikey = k.internal_key();
  Slice user_key = k.user_key();

  Saver saver;
  saver.state = kNotFound;
  saver.ucmp = ucmp;
  saver.user_key = user_key;
  saver.value = value;

  std::vector<FileMetaData*> tmp;
  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) {
      continue;
    }

    if (LevelIsOverlapped(level)) {
      // Search all overlapping files, newest first.
      tmp.clear();
      for (FileMetaData* f : files) {
        if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
          tmp.push_back(f);
        }
      }
      if (tmp.empty()) {
        continue;
      }
      std::sort(tmp.begin(), tmp.end(), NewestFirst);
      for (FileMetaData* f : tmp) {
        Status s = vset_->table_cache()->Get(
            f->number, f->file_size, ikey,
            [&saver](const Slice& fk, const Slice& fv) { SaveValue(&saver, fk, fv); });
        if (!s.ok()) {
          return s;
        }
        switch (saver.state) {
          case kNotFound:
            break;  // keep searching
          case kFound:
            return Status::OK();
          case kDeleted:
            return Status::NotFound(Slice());
          case kCorrupt:
            return Status::Corruption("corrupted key for ", user_key);
        }
      }
    } else {
      // Binary search for the single candidate file.
      int index = FindFile(*icmp, files, ikey);
      if (index >= static_cast<int>(files.size())) {
        continue;
      }
      FileMetaData* f = files[index];
      if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
        continue;
      }
      Status s = vset_->table_cache()->Get(
          f->number, f->file_size, ikey,
          [&saver](const Slice& fk, const Slice& fv) { SaveValue(&saver, fk, fv); });
      if (!s.ok()) {
        return s;
      }
      switch (saver.state) {
        case kNotFound:
          break;
        case kFound:
          return Status::OK();
        case kDeleted:
          return Status::NotFound(Slice());
        case kCorrupt:
          return Status::Corruption("corrupted key for ", user_key);
      }
    }
  }

  return Status::NotFound(Slice());
}

void Version::MultiGet(const ReadOptions& /*options*/, AsyncIoContext* io,
                       std::vector<GetBatchItem*>& items) {
  const InternalKeyComparator* icmp = vset_->icmp();
  const Comparator* ucmp = icmp->user_comparator();
  TableCache* cache = vset_->table_cache();

  // Per-key search state. The vector is sized once so the saver lambdas'
  // captured pointers stay stable.
  struct KeyState {
    GetBatchItem* item = nullptr;
    Saver saver;
    std::vector<FileMetaData*> candidates;  // this level, in search order
    size_t next_candidate = 0;
    TableGetPlan plan;
    Table* table = nullptr;
    Cache::Handle* pin = nullptr;
  };
  std::vector<KeyState> states(items.size());
  for (size_t i = 0; i < items.size(); i++) {
    states[i].item = items[i];
    states[i].saver.state = kNotFound;
    states[i].saver.ucmp = ucmp;
    states[i].saver.user_key = items[i]->key->user_key();
    states[i].saver.value = items[i]->value;
  }

  // Applies one probe's outcome; returns true when the key is settled.
  auto resolve = [](KeyState& ks, const Status& s) {
    if (!s.ok()) {
      ks.item->status = s;
      ks.item->done = true;
      return true;
    }
    switch (ks.saver.state) {
      case kNotFound:
        return false;  // keep searching
      case kFound:
        ks.item->status = Status::OK();
        break;
      case kDeleted:
        ks.item->status = Status::NotFound(Slice());
        break;
      case kCorrupt:
        ks.item->status = Status::Corruption("corrupted key for ", ks.saver.user_key);
        break;
    }
    ks.item->done = true;
    return true;
  };

  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) {
      continue;
    }

    // Candidate files for each still-pending key at this level: all
    // overlapping files newest-first (overlapped levels) or the single
    // binary-searched file (sorted levels).
    bool any = false;
    for (KeyState& ks : states) {
      ks.candidates.clear();
      ks.next_candidate = 0;
      if (ks.item->done) {
        continue;
      }
      const Slice user_key = ks.saver.user_key;
      if (LevelIsOverlapped(level)) {
        for (FileMetaData* f : files) {
          if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
              ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
            ks.candidates.push_back(f);
          }
        }
        std::sort(ks.candidates.begin(), ks.candidates.end(), NewestFirst);
      } else {
        int index = FindFile(*icmp, files, ks.item->key->internal_key());
        if (index < static_cast<int>(files.size())) {
          FileMetaData* f = files[index];
          if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0) {
            ks.candidates.push_back(f);
          }
        }
      }
      any = any || !ks.candidates.empty();
    }
    if (!any) {
      continue;
    }

    // Probe rounds. Each round takes every pending key's next candidate,
    // runs the synchronous plan phase, then submits all uncached block reads
    // at once and finishes them after one Wait. A key whose probe came back
    // empty re-enters the next round with its next candidate (L0 chains).
    bool more = true;
    while (more) {
      more = false;
      std::vector<KeyState*> submitted;
      std::vector<AsyncIoOp*> ops;
      for (KeyState& ks : states) {
        if (ks.item->done || ks.next_candidate >= ks.candidates.size()) {
          continue;
        }
        FileMetaData* f = ks.candidates[ks.next_candidate++];
        Table* table = nullptr;
        Cache::Handle* pin = nullptr;
        Status s = cache->GetTable(f->number, f->file_size, &pin, &table);
        if (s.ok()) {
          ks.plan = TableGetPlan();
          Saver* saver = &ks.saver;
          s = table->PlanGet(ks.item->key->internal_key(), &ks.plan,
                             [saver](const Slice& fk, const Slice& fv) { SaveValue(saver, fk, fv); });
        }
        if (!s.ok() || !ks.plan.need_read) {
          if (pin != nullptr) {
            cache->ReleaseTable(pin);
          }
          if (!resolve(ks, s) && ks.next_candidate < ks.candidates.size()) {
            more = true;
          }
          continue;
        }
        ks.table = table;
        ks.pin = pin;
        io->SubmitRead(table->file(), &ks.plan.op);
        submitted.push_back(&ks);
        ops.push_back(&ks.plan.op);
      }
      if (!ops.empty()) {
        io->Wait(ops.data(), ops.size());
        for (KeyState* ks : submitted) {
          Saver* saver = &ks->saver;
          Status s = ks->table->FinishGet(
              ks->item->key->internal_key(), &ks->plan,
              [saver](const Slice& fk, const Slice& fv) { SaveValue(saver, fk, fv); });
          cache->ReleaseTable(ks->pin);
          ks->pin = nullptr;
          ks->table = nullptr;
          if (!resolve(*ks, s) && ks->next_candidate < ks->candidates.size()) {
            more = true;
          }
        }
      }
    }
  }

  for (KeyState& ks : states) {
    if (!ks.item->done) {
      ks.item->status = Status::NotFound(Slice());
      ks.item->done = true;
    }
  }
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin, const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < kNumLevels);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp()->user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before the specified range; skip it.
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after the specified range; skip it.
    } else {
      inputs->push_back(f);
      if (LevelIsOverlapped(level)) {
        // Overlapped levels: files may touch each other; grow the range and
        // restart to keep the input set closed under overlap.
        if (begin != nullptr && user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr && user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < kNumLevels; level++) {
    char buf[50];
    std::snprintf(buf, sizeof(buf), "--- level %d ---\n", level);
    r.append(buf);
    for (const FileMetaData* f : files_[level]) {
      std::snprintf(buf, sizeof(buf), " %llu:%llu ", static_cast<unsigned long long>(f->number),
                    static_cast<unsigned long long>(f->file_size));
      r.append(buf);
      r.append(f->smallest.user_key().ToString());
      r.append("..");
      r.append(f->largest.user_key().ToString());
      r.push_back('\n');
    }
  }
  return r;
}

// ----------------- VersionSet::Builder -----------------

// Accumulates edits on top of a base version to produce a new version.
class VersionSet::Builder {
 public:
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = vset_->icmp();
    for (int level = 0; level < kNumLevels; level++) {
      levels_[level].added_files = std::make_shared<FileSet>(cmp);
    }
  }

  ~Builder() {
    for (int level = 0; level < kNumLevels; level++) {
      // Drop references to added files not moved into a version.
      std::vector<FileMetaData*> to_unref(levels_[level].added_files->begin(),
                                          levels_[level].added_files->end());
      for (FileMetaData* f : to_unref) {
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  void Apply(const VersionEdit* edit) {
    for (const auto& [level, number] : edit->deleted_files_) {
      levels_[level].deleted_files.insert(number);
    }
    for (const auto& [level, meta] : edit->new_files_) {
      FileMetaData* f = new FileMetaData(meta);
      f->refs = 1;
      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files->insert(f);
    }
  }

  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = vset_->icmp();
    for (int level = 0; level < kNumLevels; level++) {
      // Merge added files with base files, dropping deleted files.
      const std::vector<FileMetaData*>& base_files = base_->files_[level];
      auto base_iter = base_files.begin();
      auto base_end = base_files.end();
      const FileSet* added_files = levels_[level].added_files.get();
      v->files_[level].reserve(base_files.size() + added_files->size());
      for (FileMetaData* added_file : *added_files) {
        // Add all smaller base files first.
        for (auto bpos = std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddFile(v, level, *base_iter);
        }
        MaybeAddFile(v, level, added_file);
      }
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddFile(v, level, *base_iter);
      }

#ifndef NDEBUG
      if (!v->LevelIsOverlapped(level)) {
        // Sorted levels must stay disjoint.
        for (size_t i = 1; i < v->files_[level].size(); i++) {
          const InternalKey& prev_end = v->files_[level][i - 1]->largest;
          const InternalKey& this_begin = v->files_[level][i]->smallest;
          if (vset_->icmp()->Compare(prev_end.Encode(), this_begin.Encode()) >= 0) {
            std::abort();
          }
        }
      }
#endif
    }
  }

 private:
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(FileMetaData* f1, FileMetaData* f2) const {
      int r = internal_comparator->Compare(f1->smallest.Encode(), f2->smallest.Encode());
      if (r != 0) {
        return (r < 0);
      }
      return f1->number < f2->number;  // break ties by file number
    }
  };

  using FileSet = std::set<FileMetaData*, BySmallestKey>;

  struct LevelState {
    std::set<uint64_t> deleted_files;
    std::shared_ptr<FileSet> added_files;
  };

  void MaybeAddFile(Version* v, int level, FileMetaData* f) {
    if (levels_[level].deleted_files.count(f->number) > 0) {
      // File is deleted; do nothing.
    } else {
      std::vector<FileMetaData*>* files = &v->files_[level];
      if (!v->LevelIsOverlapped(level) && !files->empty()) {
        // Must not overlap the previous file in a sorted level.
        assert(vset_->icmp()->Compare((*files)[files->size() - 1]->largest.Encode(),
                                      f->smallest.Encode()) < 0);
      }
      f->refs++;
      files->push_back(f);
    }
  }

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[kNumLevels];
};

// ----------------- VersionSet -----------------

VersionSet::VersionSet(std::string dbname, const Options* options, TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : env_(options->env),
      dbname_(std::move(dbname)),
      options_(options),
      table_cache_(table_cache),
      icmp_(cmp),
      dummy_versions_(this),
      current_(nullptr) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // all versions released
}

void VersionSet::AppendVersion(Version* v) {
  // Make v current.
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list.
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

double VersionSet::MaxBytesForLevel(int level) const {
  double result = static_cast<double>(options_->max_bytes_for_level_base);
  for (int l = 1; l < level; l++) {
    result *= options_->max_bytes_for_level_multiplier;
  }
  return result;
}

void VersionSet::Finalize(Version* v) {
  int best_level = -1;
  double best_score = -1;

  for (int level = 0; level < kNumLevels - 1; level++) {
    double score;
    if (options_->compaction_style == CompactionStyle::kTiered) {
      // A level compacts once it accumulates tiered_runs_per_level runs.
      score = static_cast<double>(v->files_[level].size()) /
              static_cast<double>(options_->tiered_runs_per_level);
    } else if (level == 0) {
      score = v->files_[level].size() / static_cast<double>(options_->l0_compaction_trigger);
    } else {
      const double level_bytes = static_cast<double>(NumLevelBytesOf(v, level));
      score = level_bytes / MaxBytesForLevel(level);
    }
    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

namespace {
int64_t NumLevelBytesOf(const Version* v, int level) {
  int64_t sum = 0;
  for (const FileMetaData* f : v->files(level)) {
    sum += static_cast<int64_t>(f->file_size);
  }
  return sum;
}

void GetRangeOf(const InternalKeyComparator& icmp, const std::vector<FileMetaData*>& inputs,
                InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp.Compare(f->smallest.Encode(), smallest->Encode()) < 0) {
        *smallest = f->smallest;
      }
      if (icmp.Compare(f->largest.Encode(), largest->Encode()) > 0) {
        *largest = f->largest;
      }
    }
  }
}
}  // namespace

Status VersionSet::LogAndApply(VersionEdit* edit, Mutex* mu) {
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }
  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize new descriptor log file if necessary by creating a temporary
  // file that contains a snapshot of the current version.
  std::string new_manifest_file;
  Status s;
  if (descriptor_log_ == nullptr) {
    assert(descriptor_file_ == nullptr);
    manifest_file_number_ = NewFileNumber();
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = env_->NewWritableFile(new_manifest_file, &descriptor_file_);
    if (s.ok()) {
      descriptor_log_ = std::make_unique<log::Writer>(descriptor_file_.get());
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  // Write the edit to the MANIFEST without holding the DB mutex.
  {
    mu->Unlock();
    if (s.ok()) {
      std::string record;
      edit->EncodeTo(&record);
      s = descriptor_log_->AddRecord(record);
      if (s.ok()) {
        s = descriptor_file_->Sync();
      }
    }
    if (s.ok() && !new_manifest_file.empty()) {
      s = SetCurrentFile(env_, dbname_, manifest_file_number_);
    }
    mu->Lock();
  }

  // Install the new version.
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
  } else {
    delete v;
    if (!new_manifest_file.empty()) {
      descriptor_log_.reset();
      descriptor_file_.reset();
      // Best-effort cleanup: CURRENT still points at the old manifest, so a
      // leftover file is inert and obsolete-file GC removes it.
      env_->RemoveFile(new_manifest_file).IgnoreError();
    }
  }

  return s;
}

Status VersionSet::Recover() {
  // Read "CURRENT", which points to the active MANIFEST.
  std::string current;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file", s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  Builder builder(this, current_);

  {
    log::Reader reader(file.get(), nullptr, /*checksum=*/true);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ && edit.comparator_ != icmp_->user_comparator()->Name()) {
          s = Status::InvalidArgument(edit.comparator_ + " does not match existing comparator ",
                                      icmp_->user_comparator()->Name());
        }
      }
      if (s.ok()) {
        builder.Apply(&edit);
      }
      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }
      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }
      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }
  file.reset();

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
  }

  return s;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  VersionEdit edit;
  edit.SetComparatorName(icmp_->user_comparator()->Name());

  for (int level = 0; level < kNumLevels; level++) {
    for (const FileMetaData* f : current_->files_[level]) {
      edit.AddFile(level, f->number, f->file_size, f->smallest, f->largest);
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

int VersionSet::NumLevelFiles(int level) const {
  assert(level >= 0 && level < kNumLevels);
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  assert(level >= 0 && level < kNumLevels);
  return NumLevelBytesOf(current_, level);
}

std::string VersionSet::LevelSummary() const {
  std::string r = "files[";
  for (int level = 0; level < kNumLevels; level++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), " %d", NumLevelFiles(level));
    r.append(buf);
  }
  r.append(" ]");
  return r;
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_; v = v->next_) {
    for (int level = 0; level < kNumLevels; level++) {
      for (const FileMetaData* f : v->files_[level]) {
        live->insert(f->number);
      }
    }
  }
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = false;
  options.fill_cache = false;

  // Level-0 (and tiered) inputs need one iterator per file; sorted-level
  // inputs can share a concatenating iterator.
  const bool overlapped_inputs = current_->LevelIsOverlapped(c->level());
  const int space = (overlapped_inputs ? c->num_input_files(0) + 1 : 2);
  std::vector<Iterator*> list(space);
  int num = 0;
  for (int which = 0; which < 2; which++) {
    if (!c->inputs_[which].empty()) {
      if (which == 0 && overlapped_inputs) {
        for (FileMetaData* f : c->inputs_[which]) {
          list[num++] = table_cache_->NewIterator(f->number, f->file_size);
        }
      } else if (which == 1 && current_->LevelIsOverlapped(c->level() + 1)) {
        for (FileMetaData* f : c->inputs_[which]) {
          if (num >= static_cast<int>(list.size())) {
            list.push_back(nullptr);
          }
          list[num++] = table_cache_->NewIterator(f->number, f->file_size);
        }
      } else {
        // Create a concatenating iterator over the files in this level.
        auto* flist = &c->inputs_[which];
        TableCache* cache = table_cache_;
        if (num >= static_cast<int>(list.size())) {
          list.push_back(nullptr);
        }
        list[num++] = NewTwoLevelIterator(
            new LevelFileNumIterator(*icmp_, flist),
            [cache](const Slice& file_value) -> Iterator* {
              if (file_value.size() != 16) {
                return NewErrorIterator(Status::Corruption("bad file value"));
              }
              return cache->NewIterator(DecodeFixed64(file_value.data()),
                                        DecodeFixed64(file_value.data() + 8));
            });
      }
    }
  }
  assert(num <= static_cast<int>(list.size()));
  Iterator* result = NewMergingIterator(icmp_, list.data(), num);
  return result;
}

Compaction* VersionSet::PickCompaction() {
  if (!(current_->compaction_score_ >= 1)) {
    return nullptr;
  }
  const int level = current_->compaction_level_;
  assert(level >= 0);
  assert(level + 1 < kNumLevels);
  Compaction* c = new Compaction(options_, level);
  c->input_version_ = current_;
  c->input_version_->Ref();

  if (options_->compaction_style == CompactionStyle::kTiered) {
    // Merge every run in `level`; never read level+1.
    c->inputs_[0] = current_->files_[level];
    return c;
  }

  if (level == 0) {
    // Pick all overlapping L0 files.
    c->inputs_[0] = current_->files_[0];
    InternalKey smallest, largest;
    GetRangeOf(*icmp_, c->inputs_[0], &smallest, &largest);
    current_->GetOverlappingInputs(0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  } else {
    // Round-robin through the key space via compact_pointer_.
    for (FileMetaData* f : current_->files_[level]) {
      if (compact_pointer_[level].empty() ||
          icmp_->Compare(f->largest.Encode(), compact_pointer_[level]) > 0) {
        c->inputs_[0].push_back(f);
        break;
      }
    }
    if (c->inputs_[0].empty()) {
      // Wrap around to the beginning of the key space.
      c->inputs_[0].push_back(current_->files_[level][0]);
    }
  }

  // Expand inputs with the overlapping files of level+1.
  InternalKey smallest, largest;
  GetRangeOf(*icmp_, c->inputs_[0], &smallest, &largest);
  current_->GetOverlappingInputs(level + 1, &smallest, &largest, &c->inputs_[1]);

  // Remember the compaction end-key for round-robin.
  compact_pointer_[level] = largest.Encode().ToString();
  return c;
}

// ----------------- Compaction -----------------

Compaction::Compaction(const Options* options, int level)
    : level_(level),
      max_output_file_size_(options->target_file_size),
      input_version_(nullptr) {
  for (int i = 0; i < kNumLevels; i++) {
    level_ptrs_[i] = 0;
  }
}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

bool Compaction::IsTrivialMove() const {
  // Move a single input file to the next level iff nothing overlaps it there
  // (applies to leveled style; tiered pushes whole levels, which is a merge
  // of sibling runs, not a move — unless the level holds exactly one run).
  return (num_input_files(0) == 1 && num_input_files(1) == 0);
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : inputs_[which]) {
      edit->RemoveFile(level_ + which, f->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  const Comparator* user_cmp = input_version_->vset_->icmp()->user_comparator();
  // When the output level's resident files are not compaction inputs (tiered
  // push-down, or a leveled compaction with no overlap), they may still hold
  // older versions of the key, so they must be checked before a tombstone
  // can be elided.
  const int first_uncompacted_level = inputs_[1].empty() ? level_ + 1 : level_ + 2;
  for (int lvl = first_uncompacted_level; lvl < kNumLevels; lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    if (input_version_->LevelIsOverlapped(lvl)) {
      // Overlapped deeper levels: any file may contain the key; scan all.
      for (const FileMetaData* f : files) {
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
          return false;
        }
      }
      continue;
    }
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // Inside or before f's range.
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          return false;
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace p2kvs
