// DB: the public interface of the LSM engine ("RocksLite"). Each p2KVS
// worker owns exactly one DB instance; the multi-instance baselines open
// several directly.

#ifndef P2KVS_SRC_LSM_DB_H_
#define P2KVS_SRC_LSM_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/options.h"
#include "src/lsm/write_batch.h"
#include "src/util/iterator.h"
#include "src/util/status.h"

namespace p2kvs {

// Recovery-time filter deciding whether a logged write (tagged with a GSN,
// 0 if untagged) should be replayed. p2KVS uses it to drop WriteBatches of
// transactions that never committed (paper §4.5).
using GsnRecoveryFilter = std::function<bool(uint64_t gsn)>;

struct DbStats {
  uint64_t flush_count = 0;
  uint64_t compaction_count = 0;
  uint64_t flush_bytes_written = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t stall_micros = 0;
  uint64_t write_group_count = 0;  // WAL writes (groups committed)
  uint64_t write_request_count = 0;
};

class DB {
 public:
  // Opens (creating if needed) the database in `name`. An optional
  // recovery_filter screens WAL records by GSN during replay.
  static Status Open(const Options& options, const std::string& name, std::unique_ptr<DB>* dbptr,
                     GsnRecoveryFilter recovery_filter = nullptr);

  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions&, const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const WriteOptions&, const Slice& key) = 0;
  // Atomically applies the batch (the unit of p2KVS's OBM write merging).
  virtual Status Write(const WriteOptions&, WriteBatch* updates) = 0;

  virtual Status Get(const ReadOptions&, const Slice& key, std::string* value) = 0;

  // Batched point lookups (RocksDB's multiget); statuses[i] corresponds to
  // keys[i]. Shares one snapshot/version across the batch.
  virtual std::vector<Status> MultiGet(const ReadOptions&, const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) = 0;

  // Heap-allocated iterator over the user key space (caller owns).
  virtual Iterator* NewIterator(const ReadOptions&) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // Blocks until all background flushes/compactions are quiescent (test and
  // benchmark hook).
  virtual void WaitForBackgroundWork() = 0;

  // Forces the current memtable to be flushed (test hook).
  virtual Status FlushMemTable() = 0;

  // Clears a sticky background error (bg_error_) after the underlying
  // condition recovered: rotates to a fresh WAL, re-flushes the surviving
  // memtable contents, and restores write availability. Returns the new
  // background error if the re-flush fails again; OK if the DB is healthy.
  virtual Status Resume() = 0;

  virtual DbStats GetStats() const = 0;

  // Installs observability callbacks fired on flush/compaction completion and
  // write stalls (see EngineEventHooks in options.h). Call before the DB
  // serves traffic; engines without instrumentation ignore it.
  virtual void SetEventHooks(const EngineEventHooks& /*hooks*/) {}

  // "files[ a b c ... ]" per-level file counts.
  virtual std::string LevelFilesSummary() const = 0;

  virtual size_t ApproximateMemoryUsage() const = 0;
};

// Destroys the contents of the named database (files and directory).
Status DestroyDB(const std::string& name, const Options& options);

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_DB_H_
