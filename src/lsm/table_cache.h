// TableCache: keeps recently used SST readers open, keyed by file number.

#ifndef P2KVS_SRC_LSM_TABLE_CACHE_H_
#define P2KVS_SRC_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/lsm/options.h"
#include "src/sst/cache.h"
#include "src/sst/table.h"
#include "src/util/iterator.h"

namespace p2kvs {

class TableCache {
 public:
  TableCache(std::string dbname, const Options& options, const SstOptions& sst_options,
             int entries);
  ~TableCache() = default;

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  // Iterator over the named file; the cache entry stays pinned while the
  // iterator lives. If tableptr is non-null it is set to the open Table
  // (owned by the cache — do not delete).
  Iterator* NewIterator(uint64_t file_number, uint64_t file_size, Table** tableptr = nullptr);

  // Point lookup inside the named file.
  Status Get(uint64_t file_number, uint64_t file_size, const Slice& internal_key,
             const std::function<void(const Slice&, const Slice&)>& handle_result);

  // Pins the open Table for the named file across several calls (the batched
  // MultiGet path: PlanGet, async read against table->file(), FinishGet).
  // *table stays valid until ReleaseTable(*handle).
  Status GetTable(uint64_t file_number, uint64_t file_size, Cache::Handle** handle,
                  Table** table);
  void ReleaseTable(Cache::Handle* handle);

  // Drops any cache entry for the file (called when the SST is deleted).
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle** handle);

  const std::string dbname_;
  const Options& options_;
  const SstOptions sst_options_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_LSM_TABLE_CACHE_H_
