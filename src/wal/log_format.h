// Record-oriented log format shared by the LSM WAL, the B+-tree WAL, the
// MANIFEST and the p2KVS transaction log. Identical to the leveldb/RocksDB
// layout: the file is a sequence of 32 KiB blocks; each record fragment is
//   checksum (4B, crc32c of type+payload, masked)
//   length   (2B, little-endian)
//   type     (1B: FULL / FIRST / MIDDLE / LAST)
//   payload
// Fragments never span blocks; trailers of < 7 bytes are zero-filled.

#ifndef P2KVS_SRC_WAL_LOG_FORMAT_H_
#define P2KVS_SRC_WAL_LOG_FORMAT_H_

namespace p2kvs {
namespace log {

enum RecordType {
  kZeroType = 0,  // preallocated/zeroed region
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header: checksum (4) + length (2) + type (1).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace p2kvs

#endif  // P2KVS_SRC_WAL_LOG_FORMAT_H_
