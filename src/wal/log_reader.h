// Sequentially reads records written by log::Writer, tolerating torn tails
// (the normal state after a crash) and reporting corruption to an optional
// Reporter.

#ifndef P2KVS_SRC_WAL_LOG_READER_H_
#define P2KVS_SRC_WAL_LOG_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/io/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace p2kvs {
namespace log {

class Reader {
 public:
  // Interface for reporting skipped corrupt regions.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // Does not take ownership of file or reporter. If checksum is true, drops
  // records failing CRC verification.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // Reads the next record into *record; returns false at EOF. The record
  // contents may be backed by *scratch.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extended, internal-only record types.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  const bool checksum_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_;
};

}  // namespace log
}  // namespace p2kvs

#endif  // P2KVS_SRC_WAL_LOG_READER_H_
