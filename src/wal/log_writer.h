// Appends records to a log file. Not thread-safe; callers serialize (the LSM
// engine does so via its writer-group leader, which is exactly the "WAL lock"
// the paper's Figure 6 measures).

#ifndef P2KVS_SRC_WAL_LOG_WRITER_H_
#define P2KVS_SRC_WAL_LOG_WRITER_H_

#include <cstdint>
#include <string>

#include "src/io/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace p2kvs {
namespace log {

class Writer {
 public:
  // Does not take ownership of dest, which must be initially empty (or use
  // the second constructor for reopened logs).
  explicit Writer(WritableFile* dest);
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

  // Pushes buffered bytes to the OS (no durability barrier).
  Status Flush() { return dest_->Flush(); }
  // Durability barrier.
  Status Sync() { return dest_->Sync(); }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;       // current offset in block
  std::string emit_buf_;   // reused header+payload scratch (one atomic append)

  // Pre-computed crc32c of the type byte, to speed per-record crc.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace p2kvs

#endif  // P2KVS_SRC_WAL_LOG_WRITER_H_
