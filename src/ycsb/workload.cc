#include "src/ycsb/workload.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace p2kvs {
namespace ycsb {

WorkloadSpec WorkloadSpec::Load() {
  WorkloadSpec spec;
  spec.name = "LOAD";
  spec.insert_proportion = 1.0;
  spec.distribution = Distribution::kUniform;
  return spec;
}

WorkloadSpec WorkloadSpec::A() {
  WorkloadSpec spec;
  spec.name = "A";
  spec.update_proportion = 0.5;
  spec.read_proportion = 0.5;
  spec.distribution = Distribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::B() {
  WorkloadSpec spec;
  spec.name = "B";
  spec.update_proportion = 0.05;
  spec.read_proportion = 0.95;
  spec.distribution = Distribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::C() {
  WorkloadSpec spec;
  spec.name = "C";
  spec.read_proportion = 1.0;
  spec.distribution = Distribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::D() {
  WorkloadSpec spec;
  spec.name = "D";
  spec.insert_proportion = 0.05;
  spec.read_proportion = 0.95;
  spec.distribution = Distribution::kLatest;
  return spec;
}

WorkloadSpec WorkloadSpec::E() {
  WorkloadSpec spec;
  spec.name = "E";
  spec.insert_proportion = 0.05;
  spec.scan_proportion = 0.95;
  spec.distribution = Distribution::kUniform;
  return spec;
}

WorkloadSpec WorkloadSpec::F() {
  WorkloadSpec spec;
  spec.name = "F";
  spec.rmw_proportion = 0.5;
  spec.read_proportion = 0.5;
  spec.distribution = Distribution::kZipfian;
  return spec;
}

WorkloadSpec WorkloadSpec::ByName(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "load") {
    return Load();
  }
  if (lower == "a") {
    return A();
  }
  if (lower == "b") {
    return B();
  }
  if (lower == "c") {
    return C();
  }
  if (lower == "d") {
    return D();
  }
  if (lower == "e") {
    return E();
  }
  if (lower == "f") {
    return F();
  }
  std::fprintf(stderr, "unknown YCSB workload: %s\n", name.c_str());
  std::abort();
}

std::string RecordKey(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(index));
  return buf;
}

std::string MakeValue(uint64_t index, size_t value_size) {
  std::string value;
  value.reserve(value_size);
  uint64_t state = index * 2654435761u + 1;
  while (value.size() < value_size) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    value.push_back(static_cast<char>('a' + ((state >> 33) % 26)));
  }
  return value;
}

OperationStream::OperationStream(const WorkloadSpec& spec, KeySpace* key_space, uint64_t seed)
    : spec_(spec),
      key_space_(key_space),
      op_rnd_(seed),
      scan_len_rnd_(seed ^ 0x5ca1ab1eull),
      uniform_rnd_(seed ^ 0xdecafbadull) {
  // record_count is a plain monotonic counter with no dependent data (keys
  // are derived from the index alone), so every access here is relaxed: a
  // stale count only skews the key distribution by a few inserts.
  uint64_t records =
      std::max<uint64_t>(1, key_space_->record_count.load(std::memory_order_relaxed));
  switch (spec_.distribution) {
    case Distribution::kZipfian:
      zipfian_ = std::make_unique<ScrambledZipfianGenerator>(records, seed ^ 0x21b6ull);
      break;
    case Distribution::kLatest:
      latest_ = std::make_unique<SkewedLatestGenerator>(&key_space_->record_count,
                                                        seed ^ 0x1a7e57ull);
      break;
    case Distribution::kUniform:
      break;
  }
}

uint64_t OperationStream::NextKeyIndex() {
  // Relaxed: see the constructor note — the count carries no payload.
  uint64_t records =
      std::max<uint64_t>(1, key_space_->record_count.load(std::memory_order_relaxed));
  switch (spec_.distribution) {
    case Distribution::kZipfian:
      return zipfian_->Next() % records;
    case Distribution::kLatest:
      return latest_->Next();
    case Distribution::kUniform:
    default:
      return uniform_rnd_.Uniform(records);
  }
}

Operation OperationStream::Next() {
  Operation op;
  double p = op_rnd_.NextDouble();

  if (p < spec_.insert_proportion) {
    // Relaxed RMW still hands every inserter a unique index; nothing else
    // is published through the counter.
    uint64_t index = key_space_->record_count.fetch_add(1, std::memory_order_relaxed);
    op.type = OpType::kInsert;
    op.key = RecordKey(index);
    return op;
  }
  p -= spec_.insert_proportion;

  if (p < spec_.update_proportion) {
    op.type = OpType::kUpdate;
    op.key = RecordKey(NextKeyIndex());
    return op;
  }
  p -= spec_.update_proportion;

  if (p < spec_.scan_proportion) {
    op.type = OpType::kScan;
    op.key = RecordKey(NextKeyIndex());
    op.scan_length = 1 + scan_len_rnd_.Uniform(spec_.max_scan_length);
    return op;
  }
  p -= spec_.scan_proportion;

  if (p < spec_.rmw_proportion) {
    op.type = OpType::kReadModifyWrite;
    op.key = RecordKey(NextKeyIndex());
    return op;
  }

  op.type = OpType::kRead;
  op.key = RecordKey(NextKeyIndex());
  return op;
}

}  // namespace ycsb
}  // namespace p2kvs
