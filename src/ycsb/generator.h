// YCSB-style random number generators: uniform, zipfian (Gray et al.'s
// method, as used by the original YCSB), scrambled zipfian, and latest.

#ifndef P2KVS_SRC_YCSB_GENERATOR_H_
#define P2KVS_SRC_YCSB_GENERATOR_H_

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "src/util/hash.h"
#include "src/util/random.h"

namespace p2kvs {
namespace ycsb {

class UniformGenerator {
 public:
  UniformGenerator(uint64_t min, uint64_t max, uint64_t seed)
      : min_(min), range_(max - min + 1), rnd_(seed) {}

  uint64_t Next() { return min_ + rnd_.Uniform(range_); }

 private:
  uint64_t min_;
  uint64_t range_;
  Random64 rnd_;
};

// Zipfian over [0, n): popular items are the small ranks. Constant 0.99 as
// in YCSB.
class ZipfianGenerator {
 public:
  static constexpr double kZipfianConst = 0.99;

  ZipfianGenerator(uint64_t num_items, uint64_t seed, double theta = kZipfianConst)
      : items_(num_items), theta_(theta), rnd_(seed) {
    assert(num_items > 0);
    zeta_n_ = Zeta(items_, theta_);
    zeta_2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1 - std::pow(2.0 / static_cast<double>(items_), 1 - theta_)) / (1 - zeta_2_ / zeta_n_);
  }

  uint64_t Next() {
    double u = rnd_.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(items_) *
                                 std::pow(eta_ * u - eta_ + 1, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 0; i < n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    return sum;
  }

  uint64_t items_;
  double theta_;
  double zeta_n_;
  double zeta_2_;
  double alpha_;
  double eta_;
  Random64 rnd_;
};

// Zipfian with the popular items scattered across the key space (YCSB's
// default for workloads A-C/F).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_items, uint64_t seed)
      : items_(num_items), zipfian_(num_items, seed) {}

  uint64_t Next() {
    uint64_t rank = zipfian_.Next();
    return Hash64(reinterpret_cast<const char*>(&rank), sizeof(rank)) % items_;
  }

 private:
  uint64_t items_;
  ZipfianGenerator zipfian_;
};

// Zipfian over a *growing* item count, extending the zeta sum incrementally
// (the trick YCSB uses for its "latest" distribution).
class GrowingZipfianGenerator {
 public:
  GrowingZipfianGenerator(uint64_t seed, double theta = ZipfianGenerator::kZipfianConst)
      : theta_(theta), rnd_(seed) {}

  uint64_t Next(uint64_t num_items) {
    assert(num_items > 0);
    ExtendZeta(num_items);
    double zeta_n = zeta_;
    double alpha = 1.0 / (1.0 - theta_);
    double eta = (1 - std::pow(2.0 / static_cast<double>(num_items), 1 - theta_)) /
                 (1 - zeta_2_ / zeta_n);
    double u = rnd_.NextDouble();
    double uz = u * zeta_n;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    uint64_t v = static_cast<uint64_t>(static_cast<double>(num_items) *
                                       std::pow(eta * u - eta + 1, alpha));
    return v >= num_items ? num_items - 1 : v;
  }

 private:
  void ExtendZeta(uint64_t n) {
    for (uint64_t i = zeta_items_; i < n; i++) {
      zeta_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      if (i + 1 == 2) {
        zeta_2_ = zeta_;
      }
    }
    if (n >= 2 && zeta_items_ < 2) {
      // zeta_2_ set in the loop above.
    }
    zeta_items_ = std::max(zeta_items_, n);
  }

  double theta_;
  double zeta_ = 0;
  double zeta_2_ = 1.0;
  uint64_t zeta_items_ = 0;
  Random64 rnd_;
};

// "Latest" distribution (workload D): recency-weighted — rank 0 is the most
// recently inserted record.
class SkewedLatestGenerator {
 public:
  SkewedLatestGenerator(std::atomic<uint64_t>* insert_counter, uint64_t seed)
      : insert_counter_(insert_counter), zipfian_(seed) {}

  uint64_t Next() {
    uint64_t max = insert_counter_->load(std::memory_order_relaxed);
    if (max == 0) {
      return 0;
    }
    uint64_t off = zipfian_.Next(max);
    return max - 1 - off;
  }

 private:
  std::atomic<uint64_t>* insert_counter_;
  GrowingZipfianGenerator zipfian_;
};

}  // namespace ycsb
}  // namespace p2kvs

#endif  // P2KVS_SRC_YCSB_GENERATOR_H_
