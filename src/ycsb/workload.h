// YCSB workload definitions matching paper Table 1:
//   LOAD 100% PUT uniform | A 50U/50R zipf | B 5U/95R zipf | C 100R zipf
//   D 5I/95R latest | E 5I/95SCAN uniform | F 50RMW/50R zipf
// Plus per-thread operation streams so multi-threaded drivers need no
// synchronization beyond the shared insert counter (workload D/E inserts).

#ifndef P2KVS_SRC_YCSB_WORKLOAD_H_
#define P2KVS_SRC_YCSB_WORKLOAD_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/ycsb/generator.h"

namespace p2kvs {
namespace ycsb {

enum class OpType { kInsert, kUpdate, kRead, kScan, kReadModifyWrite };

struct Operation {
  OpType type;
  std::string key;
  size_t scan_length = 0;  // kScan only
};

enum class Distribution { kUniform, kZipfian, kLatest };

struct WorkloadSpec {
  std::string name;
  double insert_proportion = 0;
  double update_proportion = 0;
  double read_proportion = 0;
  double scan_proportion = 0;
  double rmw_proportion = 0;
  Distribution distribution = Distribution::kZipfian;
  size_t max_scan_length = 100;

  static WorkloadSpec Load();  // 100% insert, uniform
  static WorkloadSpec A();
  static WorkloadSpec B();
  static WorkloadSpec C();
  static WorkloadSpec D();
  static WorkloadSpec E();
  static WorkloadSpec F();
  // Resolves "load"/"a"..."f" (case-insensitive); aborts on unknown names.
  static WorkloadSpec ByName(const std::string& name);
};

// Formats record index i as the canonical YCSB-ish key ("user" + zero-padded
// digits); all stores sort these bytewise in insertion-index order.
std::string RecordKey(uint64_t index);

// Shared across the threads of one run: how many records exist (preloaded +
// inserted so far).
struct KeySpace {
  explicit KeySpace(uint64_t preloaded) : record_count(preloaded) {}
  std::atomic<uint64_t> record_count;
};

// Generates one thread's operation stream.
class OperationStream {
 public:
  OperationStream(const WorkloadSpec& spec, KeySpace* key_space, uint64_t seed);

  Operation Next();

 private:
  uint64_t NextKeyIndex();

  const WorkloadSpec spec_;
  KeySpace* const key_space_;
  Random64 op_rnd_;
  Random64 scan_len_rnd_;
  std::unique_ptr<ScrambledZipfianGenerator> zipfian_;
  std::unique_ptr<SkewedLatestGenerator> latest_;
  Random64 uniform_rnd_;
};

// Deterministic value payload of the given size for record `index`.
std::string MakeValue(uint64_t index, size_t value_size);

}  // namespace ycsb
}  // namespace p2kvs

#endif  // P2KVS_SRC_YCSB_WORKLOAD_H_
