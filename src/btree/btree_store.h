// WTLite: a disk-backed B+-tree key-value store standing in for WiredTiger
// in the paper's portability study (§5.6.2). Deliberately matches the
// properties that study depends on:
//   * a WAL plus a *shared* index structure guarded by one reader-writer
//     latch (writers serialize; readers share),
//   * no batch-write API,
//   * page-oriented storage with a buffer pool and periodic checkpoints.

#ifndef P2KVS_SRC_BTREE_BTREE_STORE_H_
#define P2KVS_SRC_BTREE_BTREE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/io/retry.h"
#include "src/util/iterator.h"
#include "src/util/status.h"

namespace p2kvs {

struct BTreeOptions {
  Env* env = Env::Default();
  bool create_if_missing = true;

  // Bounded retry for transient WAL faults (tagged retryable, e.g. by
  // ErrorInjectionEnv); hard errors propagate to the caller unchanged.
  RetryPolicy wal_retry;

  // Buffer pool capacity in pages (4 KiB each).
  size_t buffer_pool_pages = 2048;

  // Checkpoint (flush dirty pages, truncate the WAL) once the WAL exceeds
  // this size.
  uint64_t checkpoint_wal_bytes = 16 * 1024 * 1024;

  // fsync the WAL on every commit (WiredTiger's default commit-level
  // durability is relaxed; the paper uses default configs).
  bool sync_writes = false;
};

struct BTreeStats {
  uint64_t page_reads = 0;    // buffer pool misses
  uint64_t page_writes = 0;   // dirty page write-backs
  uint64_t checkpoints = 0;
  uint64_t splits = 0;
};

class BTreeStore {
 public:
  static Status Open(const BTreeOptions& options, const std::string& path,
                     std::unique_ptr<BTreeStore>* store);

  virtual ~BTreeStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;

  // Forward-only cursor positioned by Seek; keys in bytewise order.
  virtual Iterator* NewIterator() = 0;

  // Flushes dirty pages and truncates the WAL.
  virtual Status Checkpoint() = 0;

  virtual BTreeStats GetStats() const = 0;
  virtual size_t ApproximateMemoryUsage() const = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_BTREE_BTREE_STORE_H_
