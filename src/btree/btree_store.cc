#include "src/btree/btree_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <list>
#include <map>
#include <unordered_map>

#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/trace.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace p2kvs {

namespace {

constexpr size_t kPageSize = 4096;
// Serialized node payloads must leave room for the page header.
constexpr size_t kPagePayload = kPageSize - 16;
constexpr uint32_t kMetaMagic = 0x74726565u;  // "tree"

enum NodeType : uint8_t { kLeaf = 0, kInternal = 1 };

// An in-memory B+-tree node. Nodes are serialized to fixed-size pages; a
// node splits when its serialized size would exceed the page payload.
struct Node {
  uint32_t id = 0;
  NodeType type = kLeaf;
  bool dirty = false;

  // Leaf: keys[i] -> values[i]; next_leaf chains leaves left-to-right.
  // Internal: children.size() == keys.size() + 1; keys[i] separates
  // children[i] (< keys[i]) from children[i+1] (>= keys[i]).
  std::vector<std::string> keys;
  std::vector<std::string> values;   // leaf only
  std::vector<uint32_t> children;    // internal only
  uint32_t next_leaf = 0;

  size_t SerializedSize() const {
    size_t size = 16;  // generous header estimate
    for (const std::string& k : keys) {
      size += 5 + k.size();
    }
    if (type == kLeaf) {
      for (const std::string& v : values) {
        size += 5 + v.size();
      }
      size += 4;
    } else {
      size += 4 * children.size();
    }
    return size;
  }

  void EncodeTo(std::string* dst) const {
    dst->clear();
    dst->push_back(static_cast<char>(type));
    PutVarint32(dst, static_cast<uint32_t>(keys.size()));
    if (type == kLeaf) {
      PutFixed32(dst, next_leaf);
      for (size_t i = 0; i < keys.size(); i++) {
        PutLengthPrefixedSlice(dst, keys[i]);
        PutLengthPrefixedSlice(dst, values[i]);
      }
    } else {
      for (uint32_t child : children) {
        PutFixed32(dst, child);
      }
      for (const std::string& k : keys) {
        PutLengthPrefixedSlice(dst, k);
      }
    }
  }

  Status DecodeFrom(Slice input) {
    if (input.empty()) {
      return Status::Corruption("empty btree page");
    }
    type = static_cast<NodeType>(input[0]);
    input.remove_prefix(1);
    uint32_t nkeys;
    if (!GetVarint32(&input, &nkeys)) {
      return Status::Corruption("bad btree page header");
    }
    keys.clear();
    values.clear();
    children.clear();
    if (type == kLeaf) {
      if (input.size() < 4) {
        return Status::Corruption("bad leaf page");
      }
      next_leaf = DecodeFixed32(input.data());
      input.remove_prefix(4);
      keys.reserve(nkeys);
      values.reserve(nkeys);
      for (uint32_t i = 0; i < nkeys; i++) {
        Slice k, v;
        if (!GetLengthPrefixedSlice(&input, &k) || !GetLengthPrefixedSlice(&input, &v)) {
          return Status::Corruption("bad leaf entry");
        }
        keys.push_back(k.ToString());
        values.push_back(v.ToString());
      }
    } else {
      if (input.size() < (nkeys + 1) * 4) {
        return Status::Corruption("bad internal page");
      }
      children.reserve(nkeys + 1);
      for (uint32_t i = 0; i <= nkeys; i++) {
        children.push_back(DecodeFixed32(input.data()));
        input.remove_prefix(4);
      }
      keys.reserve(nkeys);
      for (uint32_t i = 0; i < nkeys; i++) {
        Slice k;
        if (!GetLengthPrefixedSlice(&input, &k)) {
          return Status::Corruption("bad internal entry");
        }
        keys.push_back(k.ToString());
      }
    }
    return Status::OK();
  }
};

// WAL record tags.
enum WalTag : uint8_t { kWalPut = 1, kWalDelete = 2 };

class BTreeStoreImpl final : public BTreeStore {
 public:
  BTreeStoreImpl(const BTreeOptions& options, std::string path)
      : options_(options), env_(options.env), path_(std::move(path)) {}

  ~BTreeStoreImpl() override {
    WriterMutexLock latch(&tree_latch_);
    // Destructor cannot propagate; an explicit Checkpoint() before teardown
    // is the caller's way to observe the error.
    CheckpointLocked().IgnoreError();
  }

  Status Init() EXCLUDES(tree_latch_) {
    // Init runs single-threaded (before Open() publishes the store), but
    // takes the write latch anyway so the guarded-field accesses and the
    // REQUIRES(tree_latch_) callees stay analysis-clean.
    WriterMutexLock latch(&tree_latch_);
    Status s = env_->CreateDir(path_);
    if (!s.ok()) {
      return s;
    }
    // A stale temp file means a crash interrupted a META update; the real
    // META (old or new) is intact, so the leftover is just discarded.
    env_->RemoveFile(MetaFileName() + ".tmp").IgnoreError();
    s = env_->NewRandomWritableFile(PageFileName(), &page_file_);
    if (!s.ok()) {
      return s;
    }
    uint64_t size = 0;
    // A silent size of 0 would reformat an existing store as fresh, so a
    // probe failure must abort the open.
    s = env_->GetFileSize(PageFileName(), &size);
    if (!s.ok()) {
      return s;
    }
    if (size >= kPageSize) {
      s = LoadMeta();
      if (!s.ok()) {
        return s;
      }
    } else {
      // Fresh store: page 0 = meta, page 1 = empty root leaf.
      next_page_id_ = 2;
      root_id_ = 1;
      auto root = std::make_shared<Node>();
      root->id = 1;
      root->type = kLeaf;
      root->dirty = true;
      CacheInsert(root);
      s = WriteMeta();
      if (!s.ok()) {
        return s;
      }
    }
    // Replay the WAL (if any), then start a fresh one.
    s = ReplayWal();
    if (!s.ok()) {
      return s;
    }
    return OpenWal();
  }

  Status Put(const Slice& key, const Slice& value) override {
    WriterMutexLock latch(&tree_latch_);
    Status s = AppendWal(kWalPut, key, value);
    if (!s.ok()) {
      return s;
    }
    s = InsertLocked(key, value);
    if (!s.ok()) {
      return s;
    }
    return MaybeCheckpointLocked();
  }

  Status Delete(const Slice& key) override {
    WriterMutexLock latch(&tree_latch_);
    Status s = AppendWal(kWalDelete, key, Slice());
    if (!s.ok()) {
      return s;
    }
    s = DeleteLocked(key);
    if (!s.ok()) {
      return s;
    }
    return MaybeCheckpointLocked();
  }

  Status Get(const Slice& key, std::string* value) override {
    ReaderMutexLock latch(&tree_latch_);
    std::shared_ptr<Node> leaf;
    Status s = FindLeaf(key, &leaf, nullptr);
    if (!s.ok()) {
      return s;
    }
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key.ToString());
    if (it == leaf->keys.end() || Slice(*it) != key) {
      return Status::NotFound(key);
    }
    *value = leaf->values[it - leaf->keys.begin()];
    return Status::OK();
  }

  Iterator* NewIterator() override;

  Status Checkpoint() override {
    WriterMutexLock latch(&tree_latch_);
    return CheckpointLocked();
  }

  BTreeStats GetStats() const override {
    ReaderMutexLock latch(&tree_latch_);
    BTreeStats stats = stats_;
    stats.page_reads = stats_page_reads_.load(std::memory_order_relaxed);
    stats.page_writes = stats_page_writes_.load(std::memory_order_relaxed);
    return stats;
  }

  size_t ApproximateMemoryUsage() const override {
    ReaderMutexLock latch(&tree_latch_);
    MutexLock guard(&cache_mutex_);
    size_t total = 0;
    for (const auto& [id, node] : cache_) {
      total += node->SerializedSize();
    }
    return total;
  }

 private:
  friend class BTreeIterator;

  std::string PageFileName() const { return path_ + "/pages.db"; }
  std::string MetaFileName() const { return path_ + "/META"; }
  std::string WalFileName() const { return path_ + "/wal.log"; }

  // ----- Metadata -----

  Status WriteMeta() REQUIRES(tree_latch_) {
    std::string meta;
    PutFixed32(&meta, kMetaMagic);
    PutFixed32(&meta, root_id_);
    PutFixed32(&meta, next_page_id_);
    PutFixed32(&meta, crc32c::Mask(crc32c::Value(meta.data(), meta.size())));
    // Write-then-rename so a failed update can never destroy the previous
    // META (WriteStringToFile removes its target on failure): the old copy
    // stays intact until the replacement is durable, and the rename swaps
    // them atomically.
    const std::string tmp = MetaFileName() + ".tmp";
    Status s = WriteStringToFile(env_, meta, tmp, /*sync=*/true);
    if (!s.ok()) {
      return s;
    }
    return env_->RenameFile(tmp, MetaFileName());
  }

  Status LoadMeta() REQUIRES(tree_latch_) {
    std::string meta;
    Status s = ReadFileToString(env_, MetaFileName(), &meta);
    if (!s.ok()) {
      return s;
    }
    if (meta.size() < 16 || DecodeFixed32(meta.data()) != kMetaMagic) {
      return Status::Corruption("bad btree meta");
    }
    uint32_t crc = crc32c::Unmask(DecodeFixed32(meta.data() + 12));
    if (crc != crc32c::Value(meta.data(), 12)) {
      return Status::Corruption("btree meta checksum mismatch");
    }
    root_id_ = DecodeFixed32(meta.data() + 4);
    next_page_id_ = DecodeFixed32(meta.data() + 8);
    return Status::OK();
  }

  // ----- WAL -----

  Status OpenWal() REQUIRES(tree_latch_) {
    Status s = env_->NewAppendableFile(WalFileName(), &wal_file_);
    if (!s.ok()) {
      return s;
    }
    uint64_t size = 0;
    // Writing from a wrong (zero) offset would overwrite live WAL records.
    s = env_->GetFileSize(WalFileName(), &size);
    if (!s.ok()) {
      return s;
    }
    wal_bytes_ = size;
    wal_ = std::make_unique<log::Writer>(wal_file_.get(), size);
    return Status::OK();
  }

  Status AppendWal(WalTag tag, const Slice& key, const Slice& value)
      REQUIRES(tree_latch_) {
    std::string record;
    record.push_back(static_cast<char>(tag));
    PutLengthPrefixedSlice(&record, key);
    if (tag == kWalPut) {
      PutLengthPrefixedSlice(&record, value);
    }
    Status s = RunWithRetry(env_, options_.wal_retry,
                            [&] { return wal_->AddRecord(record); });
    if (!s.ok()) {
      return s;
    }
    wal_bytes_ += record.size() + log::kHeaderSize;
    TraceEmitEngine(TraceEventType::kWalAppend, record.size());
    if (options_.sync_writes) {
      return RunWithRetry(env_, options_.wal_retry, [&] { return wal_->Sync(); });
    }
    return wal_->Flush();
  }

  Status ReplayWal() REQUIRES(tree_latch_) {
    if (!env_->FileExists(WalFileName())) {
      return Status::OK();
    }
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(WalFileName(), &file);
    if (!s.ok()) {
      return s.IsNotFound() ? Status::OK() : s;
    }
    log::Reader reader(file.get(), nullptr, /*checksum=*/true);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.empty()) {
        continue;
      }
      uint8_t tag = static_cast<uint8_t>(record[0]);
      record.remove_prefix(1);
      Slice key, value;
      if (!GetLengthPrefixedSlice(&record, &key)) {
        continue;
      }
      if (tag == kWalPut) {
        if (!GetLengthPrefixedSlice(&record, &value)) {
          continue;
        }
        s = InsertLocked(key, value);
      } else if (tag == kWalDelete) {
        s = DeleteLocked(key);
      }
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

  // ----- Buffer pool -----

  void CacheInsert(const std::shared_ptr<Node>& node)
      REQUIRES_SHARED(tree_latch_) EXCLUDES(cache_mutex_) {
    MutexLock guard(&cache_mutex_);
    CacheInsertLocked(node);
  }

  void CacheInsertLocked(const std::shared_ptr<Node>& node)
      REQUIRES_SHARED(tree_latch_) REQUIRES(cache_mutex_) {
    cache_[node->id] = node;
    lru_.push_front(node->id);
    lru_pos_[node->id] = lru_.begin();
    EvictIfNeeded();
  }

  void CacheTouch(uint32_t id) EXCLUDES(cache_mutex_) {
    MutexLock guard(&cache_mutex_);
    auto pos = lru_pos_.find(id);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_.push_front(id);
      pos->second = lru_.begin();
    }
  }

  // May write back a dirty victim, so eviction needs the page file — hence
  // the shared tree latch on top of the cache mutex.
  void EvictIfNeeded() REQUIRES_SHARED(tree_latch_) REQUIRES(cache_mutex_) {
    while (cache_.size() > options_.buffer_pool_pages && !lru_.empty()) {
      uint32_t victim = lru_.back();
      auto it = cache_.find(victim);
      if (it != cache_.end()) {
        if (it->second->dirty) {
          if (!WritePage(*it->second).ok()) {
            // Evicting a dirty page whose write-back failed would lose the
            // update. Keep it cached (and dirty) and stop evicting; the
            // next checkpoint surfaces the error.
            break;
          }
          it->second->dirty = false;
        }
        cache_.erase(it);
      }
      lru_pos_.erase(victim);
      lru_.pop_back();
    }
  }

  Status WritePage(const Node& node) REQUIRES_SHARED(tree_latch_) {
    std::string payload;
    node.EncodeTo(&payload);
    assert(payload.size() <= kPagePayload);
    std::string page;
    page.reserve(kPageSize);
    PutFixed32(&page, static_cast<uint32_t>(payload.size()));
    page.append(payload);
    page.resize(kPageSize, '\0');
    // Write-backs can happen under a shared latch (cache eviction on the
    // read path), so the counter is atomic rather than part of stats_;
    // relaxed suffices for a monotonic statistic with no dependent data.
    stats_page_writes_.fetch_add(1, std::memory_order_relaxed);
    return page_file_->Write(static_cast<uint64_t>(node.id) * kPageSize, page);
  }

  Status ReadPage(uint32_t id, std::shared_ptr<Node>* out)
      REQUIRES_SHARED(tree_latch_) {
    auto buf = std::make_unique<char[]>(kPageSize);
    Slice result;
    Status s = page_file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, &result,
                                buf.get());
    if (!s.ok()) {
      return s;
    }
    if (result.size() < 4) {
      return Status::Corruption("short btree page read");
    }
    uint32_t payload_size = DecodeFixed32(result.data());
    if (payload_size + 4 > result.size()) {
      return Status::Corruption("bad btree page length");
    }
    auto node = std::make_shared<Node>();
    node->id = id;
    s = node->DecodeFrom(Slice(result.data() + 4, payload_size));
    if (!s.ok()) {
      return s;
    }
    stats_page_reads_.fetch_add(1, std::memory_order_relaxed);
    *out = node;
    return Status::OK();
  }

  Status FetchNode(uint32_t id, std::shared_ptr<Node>* out)
      REQUIRES_SHARED(tree_latch_) {
    {
      MutexLock guard(&cache_mutex_);
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        auto pos = lru_pos_.find(id);
        if (pos != lru_pos_.end()) {
          lru_.erase(pos->second);
          lru_.push_front(id);
          pos->second = lru_.begin();
        }
        *out = it->second;
        return Status::OK();
      }
    }
    std::shared_ptr<Node> node;
    Status s = ReadPage(id, &node);
    if (!s.ok()) {
      return s;
    }
    {
      MutexLock guard(&cache_mutex_);
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        // Another reader loaded it first; use theirs.
        *out = it->second;
        return Status::OK();
      }
      CacheInsertLocked(node);
    }
    *out = node;
    return Status::OK();
  }

  // ----- Tree operations (tree_latch_ held) -----

  // Descends to the leaf that owns `key`; optionally records the path of
  // internal nodes (for splits).
  Status FindLeaf(const Slice& key, std::shared_ptr<Node>* leaf,
                  std::vector<std::shared_ptr<Node>>* path)
      REQUIRES_SHARED(tree_latch_) {
    std::shared_ptr<Node> node;
    Status s = FetchNode(root_id_, &node);
    if (!s.ok()) {
      return s;
    }
    while (node->type == kInternal) {
      if (path != nullptr) {
        path->push_back(node);
      }
      // children[i] holds keys < keys[i]; upper_bound picks the child whose
      // range contains `key`.
      size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key.ToString()) -
                 node->keys.begin();
      s = FetchNode(node->children[i], &node);
      if (!s.ok()) {
        return s;
      }
    }
    *leaf = node;
    return Status::OK();
  }

  Status InsertLocked(const Slice& key, const Slice& value) REQUIRES(tree_latch_) {
    std::vector<std::shared_ptr<Node>> path;
    std::shared_ptr<Node> leaf;
    Status s = FindLeaf(key, &leaf, &path);
    if (!s.ok()) {
      return s;
    }

    std::string k = key.ToString();
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
    size_t pos = it - leaf->keys.begin();
    if (it != leaf->keys.end() && *it == k) {
      leaf->values[pos] = value.ToString();
    } else {
      leaf->keys.insert(it, k);
      leaf->values.insert(leaf->values.begin() + pos, value.ToString());
    }
    leaf->dirty = true;

    // Split up the path while nodes overflow their page.
    std::shared_ptr<Node> node = leaf;
    while (node->SerializedSize() > kPagePayload && node->keys.size() >= 2) {
      std::string separator;
      std::shared_ptr<Node> right = SplitNode(node, &separator);
      stats_.splits++;

      if (node->id == root_id_) {
        // Grow a new root.
        auto new_root = std::make_shared<Node>();
        new_root->id = next_page_id_++;
        new_root->type = kInternal;
        new_root->keys.push_back(separator);
        new_root->children.push_back(node->id);
        new_root->children.push_back(right->id);
        new_root->dirty = true;
        CacheInsert(new_root);
        root_id_ = new_root->id;
        meta_dirty_ = true;
        break;
      }

      std::shared_ptr<Node> parent = path.back();
      path.pop_back();
      size_t i = std::upper_bound(parent->keys.begin(), parent->keys.end(), separator) -
                 parent->keys.begin();
      parent->keys.insert(parent->keys.begin() + i, separator);
      parent->children.insert(parent->children.begin() + i + 1, right->id);
      parent->dirty = true;
      node = parent;
    }
    return Status::OK();
  }

  // Splits `node` in half; returns the new right sibling and the separator
  // key (first key of the right node).
  std::shared_ptr<Node> SplitNode(const std::shared_ptr<Node>& node, std::string* separator)
      REQUIRES(tree_latch_) {
    auto right = std::make_shared<Node>();
    right->id = next_page_id_++;
    right->type = node->type;
    right->dirty = true;
    meta_dirty_ = true;

    size_t mid = node->keys.size() / 2;
    if (node->type == kLeaf) {
      *separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + mid, node->keys.end());
      right->values.assign(node->values.begin() + mid, node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right->id;
    } else {
      // The middle key moves up; it does not stay in either child.
      *separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
      right->children.assign(node->children.begin() + mid + 1, node->children.end());
      node->keys.resize(mid);
      node->children.resize(mid + 1);
    }
    node->dirty = true;
    CacheInsert(right);
    return right;
  }

  Status DeleteLocked(const Slice& key) REQUIRES(tree_latch_) {
    std::shared_ptr<Node> leaf;
    Status s = FindLeaf(key, &leaf, nullptr);
    if (!s.ok()) {
      return s;
    }
    std::string k = key.ToString();
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
    if (it == leaf->keys.end() || *it != k) {
      return Status::OK();  // absent; deletion is idempotent
    }
    size_t pos = it - leaf->keys.begin();
    leaf->keys.erase(it);
    leaf->values.erase(leaf->values.begin() + pos);
    leaf->dirty = true;
    // Leaf underflow is tolerated (no merge); scans skip empty leaves.
    return Status::OK();
  }

  Status MaybeCheckpointLocked() REQUIRES(tree_latch_) {
    if (wal_bytes_ < options_.checkpoint_wal_bytes) {
      return Status::OK();
    }
    return CheckpointLocked();
  }

  Status CheckpointLocked() REQUIRES(tree_latch_) {
    {
      // The exclusive tree latch already excludes every other cache user,
      // but take the cache mutex anyway so the guarded-map walk stays
      // analysis-clean (and stays correct if the latching ever loosens).
      MutexLock guard(&cache_mutex_);
      for (auto& [id, node] : cache_) {
        if (node->dirty) {
          Status s = WritePage(*node);
          if (!s.ok()) {
            return s;
          }
          node->dirty = false;
        }
      }
    }
    Status s = page_file_ != nullptr ? page_file_->Sync() : Status::OK();
    if (!s.ok()) {
      return s;
    }
    s = WriteMeta();
    if (!s.ok()) {
      return s;
    }
    meta_dirty_ = false;
    // Truncate the WAL: everything it contains is now in the pages.
    if (wal_ != nullptr) {
      wal_.reset();
      // The WAL is being discarded — its contents are in the pages now.
      wal_file_->Close().IgnoreError();
      wal_file_.reset();
      s = env_->NewWritableFile(WalFileName(), &wal_file_);
      if (!s.ok()) {
        return s;
      }
      wal_bytes_ = 0;
      wal_ = std::make_unique<log::Writer>(wal_file_.get());
    }
    stats_.checkpoints++;
    return Status::OK();
  }

  const BTreeOptions options_;
  Env* const env_;
  const std::string path_;

  // The paper's "one reader-writer latch over a shared index": writers
  // (Put/Delete/Checkpoint) hold it exclusive, readers hold it shared.
  // cache_mutex_ nests inside it (ACQUIRED_AFTER).
  mutable SharedMutex tree_latch_;

  // Opened once in Init() (under the write latch) and never reassigned; the
  // file object's own Read/Write are usable from concurrent shared-latch
  // holders, so the pointer is deliberately not guarded.
  std::unique_ptr<RandomWritableFile> page_file_;
  std::unique_ptr<WritableFile> wal_file_ GUARDED_BY(tree_latch_);
  std::unique_ptr<log::Writer> wal_ GUARDED_BY(tree_latch_);
  uint64_t wal_bytes_ GUARDED_BY(tree_latch_) = 0;

  uint32_t root_id_ GUARDED_BY(tree_latch_) = 1;
  uint32_t next_page_id_ GUARDED_BY(tree_latch_) = 2;
  bool meta_dirty_ GUARDED_BY(tree_latch_) = false;

  // Buffer pool bookkeeping; nests inside tree_latch_.
  mutable Mutex cache_mutex_ ACQUIRED_AFTER(tree_latch_);
  std::unordered_map<uint32_t, std::shared_ptr<Node>> cache_ GUARDED_BY(cache_mutex_);
  std::list<uint32_t> lru_ GUARDED_BY(cache_mutex_);
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_pos_
      GUARDED_BY(cache_mutex_);

  // splits/checkpoints mutate only under the exclusive latch; the page IO
  // counters are atomics because they tick on the shared-latch read path
  // (see WritePage/ReadPage).
  BTreeStats stats_ GUARDED_BY(tree_latch_);
  std::atomic<uint64_t> stats_page_reads_{0};
  std::atomic<uint64_t> stats_page_writes_{0};
};

// Snapshot-free iterator: materializes one leaf at a time under the shared
// latch. Mutations between moves may be observed, like a WiredTiger cursor
// without a transaction.
class BTreeIterator final : public Iterator {
 public:
  explicit BTreeIterator(BTreeStoreImpl* store) : store_(store) {}

  bool Valid() const override { return pos_ < entries_.size(); }

  void SeekToFirst() override { Seek(Slice()); }

  void SeekToLast() override {
    // Not needed by p2KVS scans; walk from the front.
    Seek(Slice());
    if (entries_.empty()) {
      return;
    }
    while (true) {
      std::vector<std::pair<std::string, std::string>> current = entries_;
      size_t cur_pos = pos_;
      LoadNext();
      if (entries_.empty()) {
        entries_ = std::move(current);
        pos_ = entries_.size() - 1;
        (void)cur_pos;
        return;
      }
    }
  }

  void Seek(const Slice& target) override {
    entries_.clear();
    pos_ = 0;
    ReaderMutexLock latch(&store_->tree_latch_);
    std::shared_ptr<Node> leaf;
    if (!store_->FindLeaf(target, &leaf, nullptr).ok()) {
      return;
    }
    LoadLeafFrom(leaf, target);
    // Skip forward over empty leaves.
    while (entries_.empty() && next_leaf_ != 0) {
      std::shared_ptr<Node> next;
      if (!store_->FetchNode(next_leaf_, &next).ok()) {
        return;
      }
      LoadLeafFrom(next, Slice());
    }
  }

  void Next() override {
    assert(Valid());
    pos_++;
    if (pos_ >= entries_.size()) {
      LoadNext();
    }
  }

  void Prev() override {
    // Backward iteration is not part of the WTLite cursor surface.
    assert(Valid());
    if (pos_ > 0) {
      pos_--;
    } else {
      entries_.clear();
      pos_ = 0;
    }
  }

  Slice key() const override { return entries_[pos_].first; }
  Slice value() const override { return entries_[pos_].second; }
  Status status() const override { return Status::OK(); }

 private:
  void LoadLeafFrom(const std::shared_ptr<Node>& leaf, const Slice& from) {
    entries_.clear();
    pos_ = 0;
    next_leaf_ = leaf->next_leaf;
    for (size_t i = 0; i < leaf->keys.size(); i++) {
      if (!from.empty() && Slice(leaf->keys[i]).compare(from) < 0) {
        continue;
      }
      entries_.emplace_back(leaf->keys[i], leaf->values[i]);
    }
  }

  void LoadNext() {
    ReaderMutexLock latch(&store_->tree_latch_);
    while (next_leaf_ != 0) {
      std::shared_ptr<Node> leaf;
      if (!store_->FetchNode(next_leaf_, &leaf).ok()) {
        entries_.clear();
        pos_ = 0;
        return;
      }
      LoadLeafFrom(leaf, Slice());
      if (!entries_.empty()) {
        return;
      }
    }
    entries_.clear();
    pos_ = 0;
  }

  BTreeStoreImpl* store_;
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
  uint32_t next_leaf_ = 0;
};

Iterator* BTreeStoreImpl::NewIterator() { return new BTreeIterator(this); }

}  // namespace

Status BTreeStore::Open(const BTreeOptions& options, const std::string& path,
                        std::unique_ptr<BTreeStore>* store) {
  store->reset();
  auto impl = std::make_unique<BTreeStoreImpl>(options, path);
  Status s = impl->Init();
  if (!s.ok()) {
    return s;
  }
  *store = std::move(impl);
  return Status::OK();
}

}  // namespace p2kvs
