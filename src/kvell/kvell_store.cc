#include "src/kvell/kvell_store.h"

#include <algorithm>
#include <atomic>
#include <list>
#include <map>
#include <thread>
#include <unordered_map>

#include "src/core/completion.h"
#include "src/io/async_io.h"
#include "src/util/coding.h"
#include "src/util/hash.h"
#include "src/util/intrusive_mpsc_queue.h"
#include "src/util/thread_util.h"
#include "src/util/trace.h"

namespace p2kvs {

namespace {

constexpr size_t kCachePageSize = 4096;

// Slot header: klen (4B, 0 = free slot) + vlen (4B).
constexpr size_t kSlotHeader = 8;

struct SlotLoc {
  uint32_t class_index;
  uint64_t slot_index;
};

enum class ReqType { kPut, kDelete, kGet, kMultiGet, kScan, kStop };

struct KvellRequest : MpscQueueNode {
  ReqType type;
  Slice key;
  Slice value;
  std::string* out_value = nullptr;
  size_t scan_count = 0;
  std::vector<std::pair<std::string, std::string>>* out_scan = nullptr;

  // kMultiGet: this worker owns the keys at `mget_indices` into the user's
  // arrays. Workers write disjoint indices, so sharing the vectors is safe.
  const std::vector<Slice>* mget_keys = nullptr;
  std::vector<size_t> mget_indices;
  std::vector<std::string>* mget_values = nullptr;
  std::vector<Status>* mget_statuses = nullptr;

  // The submitter's trace scope, captured at Submit and re-activated on the
  // KVell worker thread, so slot-write events cross the internal queue and
  // land in the framework worker's ring. Inactive when the caller is not
  // inside a traced dispatch.
  TraceContext trace_ctx;

  void Complete(const Status& s) { done.Finish(s); }
  Status Wait() { return done.Wait(); }

 private:
  Completion done{1};
};

// One shared-nothing KVell worker: its own index, slabs and page cache.
class KvellWorker {
 public:
  KvellWorker(const KvellOptions& options, std::string dir, int id)
      : options_(options),
        env_(options.env),
        dir_(std::move(dir)),
        id_(id),
        cache_budget_pages_(
            std::max<size_t>(1, options.page_cache_bytes /
                                    std::max(1, options.num_workers) / kCachePageSize)) {}

  Status Open() {
    Status s = env_->CreateDir(dir_);
    if (!s.ok()) {
      return s;
    }
    slabs_.resize(options_.slot_classes.size());
    for (size_t c = 0; c < options_.slot_classes.size(); c++) {
      char name[64];
      snprintf(name, sizeof(name), "/slab-%u.kv", options_.slot_classes[c]);
      s = env_->NewRandomWritableFile(dir_ + name, &slabs_[c].file);
      if (!s.ok()) {
        return s;
      }
      uint64_t size = 0;
      // num_slots = 0 on a probe failure would treat a populated slab as
      // empty and hand out live slots for new writes.
      s = env_->GetFileSize(dir_ + name, &size);
      if (!s.ok()) {
        return s;
      }
      slabs_[c].num_slots = size / options_.slot_classes[c];
    }
    s = RebuildIndex();
    if (!s.ok()) {
      return s;
    }
    if (options_.async_io) {
      AsyncIoOptions io_opts;
      io_opts.queue_depth = options_.io_queue_depth;
      io_ctx_ = NewAsyncIoContext(io_opts);
    }
    thread_ = std::thread([this] { Run(); });
    return Status::OK();
  }

  void Close() {
    queue_.Close();
    if (thread_.joinable()) {
      thread_.join();
    }
    for (auto& slab : slabs_) {
      if (slab.file != nullptr) {
        // Shutdown flush is best-effort: per-op durability is governed by
        // KvellOptions::sync_writes, not by Close().
        slab.file->Sync().IgnoreError();
        slab.file->Close().IgnoreError();
      }
    }
  }

  void Submit(KvellRequest* req) {
    req->trace_ctx = CurrentTraceContext();
    if (!queue_.Push(req)) {
      req->Complete(Status::Aborted("kvell worker stopped"));
    }
  }

  uint64_t slot_writes() const { return slot_writes_.load(std::memory_order_relaxed); }
  uint64_t slot_reads() const { return slot_reads_.load(std::memory_order_relaxed); }
  uint64_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  uint64_t index_entries() const { return index_entries_.load(std::memory_order_relaxed); }
  size_t index_memory() const { return index_memory_.load(std::memory_order_relaxed); }
  size_t cache_memory() const { return cache_pages_.load(std::memory_order_relaxed) * kCachePageSize; }

 private:
  struct Slab {
    std::unique_ptr<RandomWritableFile> file;
    uint64_t num_slots = 0;
    std::vector<uint64_t> free_slots;
  };

  void Run() {
    if (options_.pin_workers) {
      PinThreadToCpu(id_);
    }
    SetThreadName("kvell-worker-" + std::to_string(id_));
    while (true) {
      std::optional<KvellRequest*> item = queue_.Pop();
      if (!item.has_value()) {
        return;  // closed and drained
      }
      KvellRequest* req = *item;
      bool stop;
      if (req->trace_ctx.active()) {
        ScopedTraceContext scope(req->trace_ctx);
        stop = Dispatch(req);
      } else {
        stop = Dispatch(req);
      }
      if (stop) {
        return;
      }
    }
  }

  // Returns true on kStop. Factored out of Run so a traced request can be
  // dispatched under its submitter's trace scope without imposing the TLS
  // save/restore on untraced ones.
  bool Dispatch(KvellRequest* req) {
    switch (req->type) {
      case ReqType::kPut:
        req->Complete(DoPut(req->key, req->value));
        break;
      case ReqType::kDelete:
        req->Complete(DoDelete(req->key));
        break;
      case ReqType::kGet:
        req->Complete(DoGet(req->key, req->out_value));
        break;
      case ReqType::kMultiGet:
        DoMultiGet(*req->mget_keys, req->mget_indices, req->mget_values, req->mget_statuses);
        req->Complete(Status::OK());
        break;
      case ReqType::kScan:
        req->Complete(DoScan(req->key, req->scan_count, req->out_scan));
        break;
      case ReqType::kStop:
        req->Complete(Status::OK());
        return true;
    }
    return false;
  }

  uint32_t ClassFor(size_t item_size) const {
    for (uint32_t c = 0; c < options_.slot_classes.size(); c++) {
      if (item_size <= options_.slot_classes[c]) {
        return c;
      }
    }
    return static_cast<uint32_t>(options_.slot_classes.size());  // too large
  }

  Status DoPut(const Slice& key, const Slice& value) {
    const size_t item_size = kSlotHeader + key.size() + value.size();
    uint32_t cls = ClassFor(item_size);
    if (cls >= options_.slot_classes.size()) {
      return Status::InvalidArgument("item exceeds largest KVell slot class");
    }

    std::string k = key.ToString();
    auto it = index_.find(k);
    SlotLoc loc;
    if (it != index_.end() && it->second.class_index == cls) {
      // In-place update: KVell's signature no-write-amplification path.
      loc = it->second;
    } else {
      if (it != index_.end()) {
        FreeSlot(it->second);
      }
      loc.class_index = cls;
      loc.slot_index = AllocSlot(cls);
    }

    // Serialize the item into a full slot and write it in place.
    const uint32_t slot_size = options_.slot_classes[cls];
    std::string buf;
    buf.reserve(slot_size);
    PutFixed32(&buf, static_cast<uint32_t>(key.size()));
    PutFixed32(&buf, static_cast<uint32_t>(value.size()));
    buf.append(key.data(), key.size());
    buf.append(value.data(), value.size());
    buf.resize(slot_size, '\0');

    // A transient fault fails before any slot byte lands, so re-issuing the
    // full-slot write is idempotent.
    Status s = RunWithRetry(options_.env, options_.retry, [&] {
      return slabs_[cls].file->Write(loc.slot_index * slot_size, buf);
    });
    if (!s.ok()) {
      return s;
    }
    slot_writes_.fetch_add(1, std::memory_order_relaxed);
    TraceEmitEngine(TraceEventType::kSlotWrite, slot_size);
    InvalidateCache(cls, loc.slot_index);

    if (it == index_.end()) {
      index_.emplace(std::move(k), loc);
      index_entries_.fetch_add(1, std::memory_order_relaxed);
      index_memory_.fetch_add(key.size() + sizeof(SlotLoc) + 48, std::memory_order_relaxed);
    } else {
      it->second = loc;
    }
    return Status::OK();
  }

  Status DoDelete(const Slice& key) {
    auto it = index_.find(key.ToString());
    if (it == index_.end()) {
      return Status::OK();
    }
    // Mark the slot free on disk (klen = 0) so recovery skips it.
    const uint32_t cls = it->second.class_index;
    const uint32_t slot_size = options_.slot_classes[cls];
    std::string zero(kSlotHeader, '\0');
    Status s = RunWithRetry(options_.env, options_.retry, [&] {
      return slabs_[cls].file->Write(it->second.slot_index * slot_size, zero);
    });
    if (!s.ok()) {
      return s;
    }
    InvalidateCache(cls, it->second.slot_index);
    FreeSlot(it->second);
    index_memory_.fetch_sub(
        std::min<size_t>(index_memory_.load(std::memory_order_relaxed),
                         it->first.size() + sizeof(SlotLoc) + 48),
        std::memory_order_relaxed);
    index_.erase(it);
    index_entries_.fetch_sub(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status DoGet(const Slice& key, std::string* value) {
    auto it = index_.find(key.ToString());
    if (it == index_.end()) {
      return Status::NotFound(key);
    }
    return ReadSlot(it->second, key, value);
  }

  // Batched lookup for this worker's slice of a MultiGet. The uncached pages
  // needed by the whole slice are submitted to the async context together
  // (KVell's "enough in-flight requests to saturate the drive" principle),
  // inserted into the page cache on completion, and the per-key reads are
  // then served from the warmed cache. Without an async context this
  // degrades to per-key DoGet.
  void DoMultiGet(const std::vector<Slice>& keys, const std::vector<size_t>& indices,
                  std::vector<std::string>* values, std::vector<Status>* statuses) {
    if (io_ctx_ != nullptr) {
      // Distinct uncached pages across the slice, in submission order.
      struct PageFetch {
        uint64_t page_key;
        uint32_t cls;
        uint64_t page;
        std::unique_ptr<char[]> buf;
        AsyncIoOp op;
      };
      std::vector<PageFetch> fetches;
      std::unordered_map<uint64_t, Status> failed_pages;
      for (size_t i : indices) {
        auto it = index_.find(keys[i].ToString());
        if (it == index_.end()) {
          continue;
        }
        const SlotLoc& loc = it->second;
        const uint32_t slot_size = options_.slot_classes[loc.class_index];
        const uint64_t first = loc.slot_index * slot_size / kCachePageSize;
        const uint64_t last = (loc.slot_index * slot_size + slot_size - 1) / kCachePageSize;
        for (uint64_t p = first; p <= last; p++) {
          const uint64_t pk = PageKey(loc.class_index, p);
          if (cache_.find(pk) != cache_.end()) {
            continue;
          }
          bool queued = false;
          for (const PageFetch& f : fetches) {
            if (f.page_key == pk) {
              queued = true;
              break;
            }
          }
          if (!queued) {
            fetches.push_back(PageFetch{pk, loc.class_index, p, nullptr, AsyncIoOp{}});
          }
        }
      }
      // The fetch list is complete (no more reallocation), so the ops'
      // addresses are stable: submit the whole batch, then reap it.
      std::vector<AsyncIoOp*> ops;
      ops.reserve(fetches.size());
      for (PageFetch& f : fetches) {
        f.buf = std::make_unique<char[]>(kCachePageSize);
        f.op.offset = f.page * kCachePageSize;
        f.op.len = kCachePageSize;
        f.op.scratch = f.buf.get();
        io_ctx_->SubmitSlotRead(slabs_[f.cls].file.get(), &f.op);
        ops.push_back(&f.op);
      }
      io_ctx_->WaitAll(ops);
      for (PageFetch& f : fetches) {
        if (!f.op.status.ok()) {
          failed_pages.emplace(f.page_key, f.op.status);
          continue;
        }
        slot_reads_.fetch_add(1, std::memory_order_relaxed);
        CacheEntry entry;
        entry.data.assign(f.op.result.data(), f.op.result.size());
        entry.data.resize(kCachePageSize, '\0');
        lru_.push_front(f.page_key);
        entry.lru_pos = lru_.begin();
        cache_.emplace(f.page_key, std::move(entry));
        cache_pages_.fetch_add(1, std::memory_order_relaxed);
      }
      while (cache_.size() > cache_budget_pages_ && !lru_.empty()) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
        cache_pages_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (!failed_pages.empty()) {
        // Fail the keys touching a failed page outright (no silent sync
        // retry — a MultiGet's partial failures must be visible per key);
        // everything else reads from the warmed cache below.
        for (size_t i : indices) {
          auto it = index_.find(keys[i].ToString());
          if (it == index_.end()) {
            (*statuses)[i] = Status::NotFound(keys[i]);
            continue;
          }
          const SlotLoc& loc = it->second;
          const uint32_t slot_size = options_.slot_classes[loc.class_index];
          const uint64_t first = loc.slot_index * slot_size / kCachePageSize;
          const uint64_t last = (loc.slot_index * slot_size + slot_size - 1) / kCachePageSize;
          Status page_status;
          for (uint64_t p = first; p <= last && page_status.ok(); p++) {
            auto failed = failed_pages.find(PageKey(loc.class_index, p));
            if (failed != failed_pages.end()) {
              page_status = failed->second;
            }
          }
          (*statuses)[i] = page_status.ok()
                               ? ReadSlot(loc, keys[i], &(*values)[i])
                               : page_status;
        }
        return;
      }
    }
    for (size_t i : indices) {
      (*statuses)[i] = DoGet(keys[i], &(*values)[i]);
    }
  }

  Status DoScan(const Slice& begin, size_t count,
                std::vector<std::pair<std::string, std::string>>* out) {
    out->clear();
    auto it = begin.empty() ? index_.begin() : index_.lower_bound(begin.ToString());
    for (; it != index_.end() && out->size() < count; ++it) {
      std::string value;
      Status s = ReadSlot(it->second, it->first, &value);
      if (!s.ok()) {
        return s;
      }
      out->emplace_back(it->first, std::move(value));
    }
    return Status::OK();
  }

  uint64_t AllocSlot(uint32_t cls) {
    Slab& slab = slabs_[cls];
    if (!slab.free_slots.empty()) {
      uint64_t slot = slab.free_slots.back();
      slab.free_slots.pop_back();
      return slot;
    }
    return slab.num_slots++;
  }

  void FreeSlot(const SlotLoc& loc) { slabs_[loc.class_index].free_slots.push_back(loc.slot_index); }

  // ----- Page cache -----

  uint64_t PageKey(uint32_t cls, uint64_t page) const { return (static_cast<uint64_t>(cls) << 56) | page; }

  void InvalidateCache(uint32_t cls, uint64_t slot_index) {
    const uint32_t slot_size = options_.slot_classes[cls];
    uint64_t start_page = slot_index * slot_size / kCachePageSize;
    uint64_t end_page = (slot_index * slot_size + slot_size - 1) / kCachePageSize;
    for (uint64_t p = start_page; p <= end_page; p++) {
      auto it = cache_.find(PageKey(cls, p));
      if (it != cache_.end()) {
        lru_.erase(it->second.lru_pos);
        cache_.erase(it);
        cache_pages_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  // Reads `n` bytes at `offset` in class `cls` through the page cache.
  Status CachedRead(uint32_t cls, uint64_t offset, size_t n, std::string* out) {
    out->clear();
    out->reserve(n);
    uint64_t page = offset / kCachePageSize;
    size_t page_off = offset % kCachePageSize;
    while (out->size() < n) {
      const std::string* data;
      Status s = FetchPage(cls, page, &data);
      if (!s.ok()) {
        return s;
      }
      size_t take = std::min(n - out->size(), kCachePageSize - page_off);
      out->append(data->data() + page_off, take);
      page_off = 0;
      page++;
    }
    return Status::OK();
  }

  Status FetchPage(uint32_t cls, uint64_t page, const std::string** out) {
    uint64_t key = PageKey(cls, page);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.erase(it->second.lru_pos);
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      *out = &it->second.data;
      return Status::OK();
    }

    auto buf = std::make_unique<char[]>(kCachePageSize);
    Slice result;
    Status s = slabs_[cls].file->Read(page * kCachePageSize, kCachePageSize, &result, buf.get());
    if (!s.ok()) {
      return s;
    }
    slot_reads_.fetch_add(1, std::memory_order_relaxed);
    CacheEntry entry;
    entry.data.assign(result.data(), result.size());
    entry.data.resize(kCachePageSize, '\0');
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
    auto [pos, inserted] = cache_.emplace(key, std::move(entry));
    cache_pages_.fetch_add(1, std::memory_order_relaxed);
    while (cache_.size() > cache_budget_pages_ && !lru_.empty()) {
      uint64_t victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      cache_pages_.fetch_sub(1, std::memory_order_relaxed);
    }
    *out = &pos->second.data;
    return Status::OK();
  }

  Status ReadSlot(const SlotLoc& loc, const Slice& expected_key, std::string* value) {
    const uint32_t slot_size = options_.slot_classes[loc.class_index];
    std::string slot;
    Status s = CachedRead(loc.class_index, loc.slot_index * slot_size, slot_size, &slot);
    if (!s.ok()) {
      return s;
    }
    if (slot.size() < kSlotHeader) {
      return Status::Corruption("short KVell slot");
    }
    uint32_t klen = DecodeFixed32(slot.data());
    uint32_t vlen = DecodeFixed32(slot.data() + 4);
    if (klen == 0 || kSlotHeader + klen + vlen > slot.size()) {
      return Status::Corruption("bad KVell slot");
    }
    if (Slice(slot.data() + kSlotHeader, klen) != expected_key) {
      return Status::Corruption("KVell slot key mismatch");
    }
    value->assign(slot.data() + kSlotHeader + klen, vlen);
    return Status::OK();
  }

  Status RebuildIndex() {
    // KVell recovers by scanning the slabs and rebuilding the in-memory
    // index (no WAL exists).
    for (uint32_t cls = 0; cls < slabs_.size(); cls++) {
      const uint32_t slot_size = options_.slot_classes[cls];
      Slab& slab = slabs_[cls];
      auto buf = std::make_unique<char[]>(slot_size);
      for (uint64_t slot = 0; slot < slab.num_slots; slot++) {
        Slice result;
        Status s = slab.file->Read(slot * slot_size, slot_size, &result, buf.get());
        if (!s.ok()) {
          return s;
        }
        if (result.size() < kSlotHeader) {
          continue;
        }
        uint32_t klen = DecodeFixed32(result.data());
        uint32_t vlen = DecodeFixed32(result.data() + 4);
        if (klen == 0 || kSlotHeader + klen + vlen > result.size()) {
          slab.free_slots.push_back(slot);
          continue;
        }
        std::string key(result.data() + kSlotHeader, klen);
        index_[key] = SlotLoc{cls, slot};
        index_entries_.fetch_add(1, std::memory_order_relaxed);
        index_memory_.fetch_add(key.size() + sizeof(SlotLoc) + 48, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  struct CacheEntry {
    std::string data;
    std::list<uint64_t>::iterator lru_pos;
  };

  const KvellOptions options_;
  Env* const env_;
  const std::string dir_;
  const int id_;
  const size_t cache_budget_pages_;

  IntrusiveMpscQueue<KvellRequest> queue_;
  std::thread thread_;
  // Only the worker thread submits/waits; created before the thread starts.
  std::unique_ptr<AsyncIoContext> io_ctx_;

  // Worker-private state (only touched by the worker thread after Open).
  // Deliberately NOT mutex-guarded and NOT thread-safety-annotated: the
  // shared-nothing design (paper §4.1, KVell §3.1) confines every access to
  // the owning thread, and the queue handoff provides the happens-before
  // edge for requests. Only the counters below are atomics, because
  // GetStats() reads them from other threads.
  std::map<std::string, SlotLoc> index_;
  std::vector<Slab> slabs_;
  std::unordered_map<uint64_t, CacheEntry> cache_;
  std::list<uint64_t> lru_;

  // Cross-thread-readable statistics; single writer (the worker thread),
  // relaxed everywhere — monotonic counters with no dependent data.
  std::atomic<uint64_t> slot_writes_{0};
  std::atomic<uint64_t> slot_reads_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> index_entries_{0};
  std::atomic<size_t> index_memory_{0};
  std::atomic<size_t> cache_pages_{0};
};

class KvellStoreImpl final : public KvellStore {
 public:
  KvellStoreImpl(const KvellOptions& options, std::string path)
      : options_(options), path_(std::move(path)) {}

  ~KvellStoreImpl() override {
    for (auto& worker : workers_) {
      worker->Close();
    }
  }

  Status Open() {
    Status dir_status = options_.env->CreateDir(path_);
    if (!dir_status.ok()) {
      return dir_status;
    }
    for (int i = 0; i < options_.num_workers; i++) {
      workers_.push_back(
          std::make_unique<KvellWorker>(options_, path_ + "/worker-" + std::to_string(i), i));
      Status s = workers_.back()->Open();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

  Status Put(const Slice& key, const Slice& value) override {
    KvellRequest req;
    req.type = ReqType::kPut;
    req.key = key;
    req.value = value;
    WorkerFor(key)->Submit(&req);
    return req.Wait();
  }

  Status Delete(const Slice& key) override {
    KvellRequest req;
    req.type = ReqType::kDelete;
    req.key = key;
    WorkerFor(key)->Submit(&req);
    return req.Wait();
  }

  Status Get(const Slice& key, std::string* value) override {
    KvellRequest req;
    req.type = ReqType::kGet;
    req.key = key;
    req.out_value = value;
    req.out_value->clear();
    KvellRequest* reqp = &req;
    // DoGet writes into out_value via the worker thread.
    req.out_value = value;
    WorkerFor(key)->Submit(reqp);
    return req.Wait();
  }

  std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override {
    std::vector<Status> statuses(keys.size());
    values->assign(keys.size(), std::string());

    // Partition the batch by owning worker; one request per non-empty slice
    // lets every worker fetch its pages concurrently with the others.
    std::vector<std::vector<size_t>> by_worker(workers_.size());
    for (size_t i = 0; i < keys.size(); i++) {
      by_worker[WorkerIndexFor(keys[i])].push_back(i);
    }
    std::vector<std::unique_ptr<KvellRequest>> reqs;
    for (size_t w = 0; w < workers_.size(); w++) {
      if (by_worker[w].empty()) {
        continue;
      }
      auto req = std::make_unique<KvellRequest>();
      req->type = ReqType::kMultiGet;
      req->mget_keys = &keys;
      req->mget_indices = std::move(by_worker[w]);
      req->mget_values = values;
      req->mget_statuses = &statuses;
      workers_[w]->Submit(req.get());
      reqs.push_back(std::move(req));
    }
    for (auto& req : reqs) {
      Status s = req->Wait();
      if (!s.ok()) {
        // Worker shut down before serving the slice: fail its keys.
        for (size_t i : req->mget_indices) {
          statuses[i] = s;
        }
      }
    }
    return statuses;
  }

  Status Scan(const Slice& begin, size_t count,
              std::vector<std::pair<std::string, std::string>>* out) override {
    // Fork the scan to every worker, then merge (paper §4.4's "parallel
    // over-scan then filter" approach, which KVell also needs because keys
    // are hash-partitioned).
    std::vector<std::vector<std::pair<std::string, std::string>>> partials(workers_.size());
    std::vector<std::unique_ptr<KvellRequest>> reqs;
    for (size_t i = 0; i < workers_.size(); i++) {
      auto req = std::make_unique<KvellRequest>();
      req->type = ReqType::kScan;
      req->key = begin;
      req->scan_count = count;
      req->out_scan = &partials[i];
      workers_[i]->Submit(req.get());
      reqs.push_back(std::move(req));
    }
    Status result;
    for (auto& req : reqs) {
      Status s = req->Wait();
      if (!s.ok() && result.ok()) {
        result = s;
      }
    }
    if (!result.ok()) {
      return result;
    }
    out->clear();
    for (auto& partial : partials) {
      out->insert(out->end(), std::make_move_iterator(partial.begin()),
                  std::make_move_iterator(partial.end()));
    }
    std::sort(out->begin(), out->end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (out->size() > count) {
      out->resize(count);
    }
    return Status::OK();
  }

  KvellStats GetStats() const override {
    KvellStats stats;
    for (const auto& worker : workers_) {
      stats.slot_writes += worker->slot_writes();
      stats.slot_reads += worker->slot_reads();
      stats.cache_hits += worker->cache_hits();
      stats.index_entries += worker->index_entries();
      stats.index_memory_bytes += worker->index_memory();
    }
    return stats;
  }

  size_t ApproximateMemoryUsage() const override {
    size_t total = 0;
    for (const auto& worker : workers_) {
      total += worker->index_memory() + worker->cache_memory();
    }
    return total;
  }

 private:
  size_t WorkerIndexFor(const Slice& key) const {
    uint32_t h = Hash(key.data(), key.size(), 0x9747b28c);
    return h % workers_.size();
  }

  KvellWorker* WorkerFor(const Slice& key) { return workers_[WorkerIndexFor(key)].get(); }

  KvellOptions options_;
  const std::string path_;
  std::vector<std::unique_ptr<KvellWorker>> workers_;
};

}  // namespace

Status KvellStore::Open(const KvellOptions& options, const std::string& path,
                        std::unique_ptr<KvellStore>* store) {
  store->reset();
  auto impl = std::make_unique<KvellStoreImpl>(options, path);
  Status s = impl->Open();
  if (!s.ok()) {
    return s;
  }
  *store = std::move(impl);
  return Status::OK();
}

}  // namespace p2kvs
