// KVell-lite: the KVell (SOSP'19) baseline of paper §5.5, reproduced at the
// architectural level:
//   * N shared-nothing workers, keys hash-partitioned across them,
//   * per-worker fully in-memory ordered index (key -> slot), which is what
//     makes KVell memory-hungry,
//   * values stored in slab files with fixed-size slots and *in-place*
//     updates — no WAL, no compaction, hence no write amplification but
//     page-granular IO for small items,
//   * per-worker page cache for reads,
//   * scans served by merging the per-worker sorted indexes.

#ifndef P2KVS_SRC_KVELL_KVELL_STORE_H_
#define P2KVS_SRC_KVELL_KVELL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/io/retry.h"
#include "src/util/status.h"

namespace p2kvs {

struct KvellOptions {
  Env* env = Env::Default();

  // Bounded retry for transient slab-write faults (tagged retryable, e.g. by
  // ErrorInjectionEnv); hard errors propagate to the caller unchanged.
  RetryPolicy retry;

  // Number of shared-nothing workers (KVell's main tuning knob).
  int num_workers = 4;

  // Pin each worker to a core.
  bool pin_workers = true;

  // Total page-cache budget across workers (paper: 4 GB; scaled down here).
  size_t page_cache_bytes = 64 * 1024 * 1024;

  // Slot size classes. An item occupies the smallest class that fits it.
  std::vector<uint32_t> slot_classes = {256, 1024, 4096};

  // Batch the uncached page reads of a MultiGet through a per-worker
  // AsyncIoContext (submission/completion Env, src/io/async_io.h), so a
  // worker's whole read batch reaches the device at once instead of one page
  // at a time. Disabled = sequential page fetches.
  bool async_io = true;
  // Queue depth of each worker's AsyncIoContext.
  int io_queue_depth = 16;
};

struct KvellStats {
  uint64_t slot_writes = 0;
  uint64_t slot_reads = 0;       // reads that went to disk
  uint64_t cache_hits = 0;
  uint64_t index_entries = 0;
  size_t index_memory_bytes = 0;  // approximate in-memory index footprint
};

class KvellStore {
 public:
  static Status Open(const KvellOptions& options, const std::string& path,
                     std::unique_ptr<KvellStore>* store);

  virtual ~KvellStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;

  // Batched point lookup: keys are partitioned across workers, and each
  // worker issues its slice's uncached slot reads concurrently. Per-key
  // outcomes land in the returned vector (NotFound for missing keys).
  virtual std::vector<Status> MultiGet(const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) = 0;

  // Returns up to `count` key/value pairs with key >= begin, globally sorted.
  virtual Status Scan(const Slice& begin, size_t count,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  virtual KvellStats GetStats() const = 0;
  virtual size_t ApproximateMemoryUsage() const = 0;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_KVELL_KVELL_STORE_H_
