// On-disk SST structures: block handles (offset+size), the table footer, and
// the shared block-read path with CRC verification. Layout matches leveldb:
//   [data blocks][filter block][metaindex block][index block][footer]
// Every block is followed by a 5-byte trailer: 1 type byte (0 = uncompressed;
// compression is not implemented) + 4-byte masked crc32c.

#ifndef P2KVS_SRC_SST_FORMAT_H_
#define P2KVS_SRC_SST_FORMAT_H_

#include <cstdint>
#include <string>

#include "src/io/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

class BlockHandle {
 public:
  // Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle() : offset_(~0ull), size_(~0ull) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Footer: metaindex handle + index handle, padded to kEncodedLength, then an
// 8-byte magic number.
class Footer {
 public:
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

static const uint64_t kTableMagicNumber = 0xdb4775248b80fb57ull;

// 1-byte type + 32-bit crc.
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;
  bool cachable;       // true iff data can be cached
  bool heap_allocated;  // true iff caller should delete[] data.data()
};

// Reads the block identified by handle from file, verifying the CRC.
Status ReadBlock(RandomAccessFile* file, bool verify_checksums, const BlockHandle& handle,
                 BlockContents* result);

// Verification half of ReadBlock, for callers that performed the raw read
// themselves (the async batched-get path). `contents` is what the file's
// Read returned for handle's n + trailer bytes, with `buf` the scratch buffer
// that was passed to it. Checks length, CRC, and compression type, then fills
// `result`. Frees nothing: on success result->heap_allocated says whether
// ownership of buf moved into result (the file read into buf); otherwise —
// including every failure — the caller still owns buf.
Status FinishReadBlock(bool verify_checksums, const BlockHandle& handle, const Slice& contents,
                       const char* buf, BlockContents* result);

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_FORMAT_H_
