// FilterPolicy: pluggable per-SST filters; the shipped implementation is a
// standard bloom filter (double-hashing, ~10 bits/key by default), which is
// what keeps point-query read amplification low in leveled LSM trees.

#ifndef P2KVS_SRC_SST_FILTER_POLICY_H_
#define P2KVS_SRC_SST_FILTER_POLICY_H_

#include <string>

#include "src/util/slice.h"

namespace p2kvs {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  virtual const char* Name() const = 0;

  // Appends a filter summarizing keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, int n, std::string* dst) const = 0;

  // Must return true if key was in the key list passed to CreateFilter;
  // may return true for absent keys (false positives) but never false for
  // present keys.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

// Returns a bloom filter policy with the given bits per key. Caller owns the
// result and must keep it alive while any table using it is open.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_FILTER_POLICY_H_
