#include "src/sst/table.h"

#include "src/sst/block.h"
#include "src/sst/filter_block.h"
#include "src/sst/two_level_iterator.h"
#include "src/util/coding.h"

namespace p2kvs {

struct Table::Rep {
  ~Rep() = default;

  SstOptions options;
  Status status;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;
  std::unique_ptr<FilterBlockReader> filter;
  std::unique_ptr<const char[]> filter_data;

  BlockHandle metaindex_handle;  // from footer
  std::unique_ptr<Block> index_block;
};

Status Table::Open(const SstOptions& options, std::unique_ptr<RandomAccessFile> file,
                   uint64_t size, std::unique_ptr<Table>* table) {
  table->reset();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength, &footer_input,
                        footer_space);
  if (!s.ok()) {
    return s;
  }

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  // Read the index block.
  BlockContents index_block_contents;
  s = ReadBlock(file.get(), options.verify_checksums, footer.index_handle(),
                &index_block_contents);
  if (!s.ok()) {
    return s;
  }

  auto rep = new Rep;
  rep->options = options;
  rep->file = std::move(file);
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_block = std::make_unique<Block>(index_block_contents);
  rep->cache_id = (options.block_cache != nullptr ? options.block_cache->NewId() : 0);
  table->reset(new Table(rep));
  (*table)->ReadMeta(footer);
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  if (rep_->options.filter_policy == nullptr) {
    return;
  }

  BlockContents contents;
  if (!ReadBlock(rep_->file.get(), rep_->options.verify_checksums, footer.metaindex_handle(),
                 &contents)
           .ok()) {
    // Ignore errors: no filter, just higher read cost.
    return;
  }
  Block meta(contents);

  std::unique_ptr<Iterator> iter(meta.NewIterator(BytewiseComparator()));
  std::string key = "filter.";
  key.append(rep_->options.filter_policy->Name());
  iter->Seek(key);
  if (iter->Valid() && iter->key() == Slice(key)) {
    ReadFilter(iter->value());
  }
}

void Table::ReadFilter(const Slice& filter_handle_value) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) {
    return;
  }

  BlockContents block;
  if (!ReadBlock(rep_->file.get(), rep_->options.verify_checksums, filter_handle, &block).ok()) {
    return;
  }
  if (block.heap_allocated) {
    rep_->filter_data.reset(block.data.data());  // take ownership
  }
  rep_->filter = std::make_unique<FilterBlockReader>(rep_->options.filter_policy, block.data);
}

Table::Table(Rep* rep) : rep_(rep) {}

Table::~Table() = default;

static void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  Block* block = reinterpret_cast<Block*>(value);
  delete block;
}

static void ReleaseBlock(Cache* cache, Cache::Handle* handle) { cache->Release(handle); }

// Converts an index-block value (encoded BlockHandle) into a data-block
// iterator, consulting the block cache.
Iterator* Table::BlockReader(void* arg, const Slice& index_value) {
  Table* table = reinterpret_cast<Table*>(arg);
  Cache* block_cache = table->rep_->options.block_cache;
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;

  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);

  if (s.ok()) {
    BlockContents contents;
    if (block_cache != nullptr) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, table->rep_->cache_id);
      EncodeFixed64(cache_key_buffer + 8, handle.offset());
      Slice key(cache_key_buffer, sizeof(cache_key_buffer));
      cache_handle = block_cache->Lookup(key);
      if (cache_handle != nullptr) {
        block = reinterpret_cast<Block*>(block_cache->Value(cache_handle));
      } else {
        s = ReadBlock(table->rep_->file.get(), table->rep_->options.verify_checksums, handle,
                      &contents);
        if (s.ok()) {
          block = new Block(contents);
          if (contents.cachable) {
            cache_handle =
                block_cache->Insert(key, block, block->size(), &DeleteCachedBlock);
          }
        }
      }
    } else {
      s = ReadBlock(table->rep_->file.get(), table->rep_->options.verify_checksums, handle,
                    &contents);
      if (s.ok()) {
        block = new Block(contents);
      }
    }
  }

  Iterator* iter;
  if (block != nullptr) {
    iter = block->NewIterator(table->rep_->options.comparator);
    if (cache_handle == nullptr) {
      iter->RegisterCleanup([block] { delete block; });
    } else {
      iter->RegisterCleanup(
          [block_cache, cache_handle] { ReleaseBlock(block_cache, cache_handle); });
    }
  } else {
    iter = NewErrorIterator(s);
  }
  return iter;
}

Iterator* Table::NewIterator() const {
  Table* self = const_cast<Table*>(this);
  return NewTwoLevelIterator(
      rep_->index_block->NewIterator(rep_->options.comparator),
      [self](const Slice& index_value) { return BlockReader(self, index_value); });
}

RandomAccessFile* Table::file() const { return rep_->file.get(); }

namespace {

// Shared tail of the point-get paths: position the data-block iterator and
// hand the entry (if any) to the caller's saver.
Status SeekAndDeliver(Iterator* block_iter, const Slice& k,
                      const std::function<void(const Slice&, const Slice&)>& handle_result) {
  block_iter->Seek(k);
  if (block_iter->Valid()) {
    handle_result(block_iter->key(), block_iter->value());
  }
  return block_iter->status();
}

}  // namespace

Status Table::PlanGet(const Slice& k, TableGetPlan* plan,
                      const std::function<void(const Slice&, const Slice&)>& handle_result) {
  plan->need_read = false;
  std::unique_ptr<Iterator> iiter(rep_->index_block->NewIterator(rep_->options.comparator));
  iiter->Seek(k);
  if (!iiter->Valid()) {
    return iiter->status();
  }

  Slice handle_value = iiter->value();
  FilterBlockReader* filter = rep_->filter.get();
  BlockHandle handle;
  if (filter != nullptr && handle.DecodeFrom(&handle_value).ok() &&
      !filter->KeyMayMatch(handle.offset(), k)) {
    // Bloom filter says the key is definitely not present; lookup complete.
    return iiter->status();
  }

  Slice input = iiter->value();
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return s;
  }

  Cache* block_cache = rep_->options.block_cache;
  if (block_cache != nullptr) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    Cache::Handle* cache_handle =
        block_cache->Lookup(Slice(cache_key_buffer, sizeof(cache_key_buffer)));
    if (cache_handle != nullptr) {
      Block* block = reinterpret_cast<Block*>(block_cache->Value(cache_handle));
      std::unique_ptr<Iterator> block_iter(block->NewIterator(rep_->options.comparator));
      block_iter->RegisterCleanup(
          [block_cache, cache_handle] { ReleaseBlock(block_cache, cache_handle); });
      s = SeekAndDeliver(block_iter.get(), k, handle_result);
      if (s.ok()) {
        s = iiter->status();
      }
      return s;
    }
  }

  // Uncached data block: prime the read for batched submission.
  plan->need_read = true;
  plan->handle = handle;
  const size_t len = static_cast<size_t>(handle.size()) + kBlockTrailerSize;
  plan->scratch = std::make_unique<char[]>(len);
  plan->op.offset = handle.offset();
  plan->op.len = len;
  plan->op.scratch = plan->scratch.get();
  return iiter->status();
}

Status Table::FinishGet(const Slice& k, TableGetPlan* plan,
                        const std::function<void(const Slice&, const Slice&)>& handle_result) {
  if (!plan->op.status.ok()) {
    return plan->op.status;
  }
  BlockContents contents;
  Status s = FinishReadBlock(rep_->options.verify_checksums, plan->handle, plan->op.result,
                             plan->scratch.get(), &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.heap_allocated) {
    plan->scratch.release();  // ownership moved into the Block
  }
  Block* block = new Block(contents);
  Cache* block_cache = rep_->options.block_cache;
  Cache::Handle* cache_handle = nullptr;
  if (block_cache != nullptr && contents.cachable) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, plan->handle.offset());
    cache_handle = block_cache->Insert(Slice(cache_key_buffer, sizeof(cache_key_buffer)), block,
                                       block->size(), &DeleteCachedBlock);
  }
  std::unique_ptr<Iterator> block_iter(block->NewIterator(rep_->options.comparator));
  if (cache_handle == nullptr) {
    block_iter->RegisterCleanup([block] { delete block; });
  } else {
    block_iter->RegisterCleanup(
        [block_cache, cache_handle] { ReleaseBlock(block_cache, cache_handle); });
  }
  return SeekAndDeliver(block_iter.get(), k, handle_result);
}

Status Table::InternalGet(const Slice& k,
                          const std::function<void(const Slice&, const Slice&)>& handle_result) {
  Status s;
  std::unique_ptr<Iterator> iiter(rep_->index_block->NewIterator(rep_->options.comparator));
  iiter->Seek(k);
  if (iiter->Valid()) {
    Slice handle_value = iiter->value();
    FilterBlockReader* filter = rep_->filter.get();
    BlockHandle handle;
    if (filter != nullptr && handle.DecodeFrom(&handle_value).ok() &&
        !filter->KeyMayMatch(handle.offset(), k)) {
      // Bloom filter says the key is definitely not present.
    } else {
      std::unique_ptr<Iterator> block_iter(BlockReader(this, iiter->value()));
      block_iter->Seek(k);
      if (block_iter->Valid()) {
        handle_result(block_iter->key(), block_iter->value());
      }
      s = block_iter->status();
    }
  }
  if (s.ok()) {
    s = iiter->status();
  }
  return s;
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  std::unique_ptr<Iterator> index_iter(rep_->index_block->NewIterator(rep_->options.comparator));
  index_iter->Seek(key);
  uint64_t result;
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      result = handle.offset();
    } else {
      result = rep_->metaindex_handle.offset();
    }
  } else {
    // Past the last key: approximate by the metaindex offset (near file end).
    result = rep_->metaindex_handle.offset();
  }
  return result;
}

}  // namespace p2kvs
