// BlockBuilder: prefix-compressed key/value block with restart points every
// `block_restart_interval` entries (leveldb format).

#ifndef P2KVS_SRC_SST_BLOCK_BUILDER_H_
#define P2KVS_SRC_SST_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/comparator.h"
#include "src/util/slice.h"

namespace p2kvs {

class BlockBuilder {
 public:
  BlockBuilder(const Comparator* comparator, int block_restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  // Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  // Finishes the block; the returned slice is valid until Reset().
  Slice Finish();

  // Estimated (uncompressed) size of the block under construction.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const Comparator* comparator_;
  const int block_restart_interval_;

  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;    // entries since last restart
  bool finished_;
  std::string last_key_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_BLOCK_BUILDER_H_
