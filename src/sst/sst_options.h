// Options controlling SST construction and reading, decoupled from the LSM
// engine's Options so the sst library stands alone.

#ifndef P2KVS_SRC_SST_SST_OPTIONS_H_
#define P2KVS_SRC_SST_SST_OPTIONS_H_

#include <cstddef>

#include "src/sst/cache.h"
#include "src/sst/filter_policy.h"
#include "src/util/comparator.h"

namespace p2kvs {

struct SstOptions {
  // Ordering of keys inside the table (the LSM engine passes its
  // InternalKeyComparator).
  const Comparator* comparator = BytewiseComparator();

  // Approximate uncompressed size of each data block.
  size_t block_size = 4 * 1024;

  // Number of keys between restart points.
  int block_restart_interval = 16;

  // Optional bloom filter (not owned).
  const FilterPolicy* filter_policy = nullptr;

  // Verify checksums on every read.
  bool verify_checksums = true;

  // Optional cache of uncompressed data blocks (not owned).
  Cache* block_cache = nullptr;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_SST_OPTIONS_H_
