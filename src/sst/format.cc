#include "src/sst/format.h"

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace p2kvs {

void BlockHandle::EncodeTo(std::string* dst) const {
  assert(offset_ != ~0ull);
  assert(size_ != ~0ull);
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // padding
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("not an sstable (footer too short)");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      ((static_cast<uint64_t>(magic_hi) << 32) | (static_cast<uint64_t>(magic_lo)));
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }

  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  if (result.ok()) {
    // Skip over any leftover data (padding).
    const char* end = magic_ptr + 8;
    *input = Slice(end, input->data() + input->size() - end);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, bool verify_checksums, const BlockHandle& handle,
                 BlockContents* result) {
  size_t n = static_cast<size_t>(handle.size());
  char* buf = new char[n + kBlockTrailerSize];
  Slice contents;
  Status s = file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf);
  if (s.ok()) {
    s = FinishReadBlock(verify_checksums, handle, contents, buf, result);
  } else {
    result->data = Slice();
    result->cachable = false;
    result->heap_allocated = false;
  }
  if (!s.ok() || !result->heap_allocated) {
    delete[] buf;
  }
  return s;
}

Status FinishReadBlock(bool verify_checksums, const BlockHandle& handle, const Slice& contents,
                       const char* buf, BlockContents* result) {
  result->data = Slice();
  result->cachable = false;
  result->heap_allocated = false;

  const size_t n = static_cast<size_t>(handle.size());
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }

  const char* data = contents.data();
  if (verify_checksums) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      return Status::Corruption("block checksum mismatch");
    }
  }
  if (data[n] != 0) {
    return Status::Corruption("unsupported block compression type");
  }

  if (data != buf) {
    // File implementation returned a pointer into its own storage; copy not
    // needed but the data is not heap-owned by the caller's buffer.
    result->data = Slice(data, n);
  } else {
    result->data = Slice(buf, n);
    result->heap_allocated = true;
    result->cachable = true;
  }
  return Status::OK();
}

}  // namespace p2kvs
