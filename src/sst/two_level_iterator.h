// Two-level iterator: walks an index iterator whose values identify blocks,
// materializing a data iterator per block via a callback.

#ifndef P2KVS_SRC_SST_TWO_LEVEL_ITERATOR_H_
#define P2KVS_SRC_SST_TWO_LEVEL_ITERATOR_H_

#include <functional>

#include "src/util/iterator.h"

namespace p2kvs {

// block_function(index_value) -> data iterator over that block's entries.
// Takes ownership of index_iter.
Iterator* NewTwoLevelIterator(Iterator* index_iter,
                              std::function<Iterator*(const Slice&)> block_function);

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_TWO_LEVEL_ITERATOR_H_
