// Sharded LRU cache with external handles (leveldb Cache interface). Used as
// the block cache (paper: each RocksDB instance has an 8 MB block cache) and
// as the table cache.

#ifndef P2KVS_SRC_SST_CACHE_H_
#define P2KVS_SRC_SST_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/util/slice.h"

namespace p2kvs {

class Cache {
 public:
  Cache() = default;
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Opaque handle to a cache entry.
  struct Handle {};

  // Inserts key->value with the given charge; deleter runs when the entry is
  // evicted and unreferenced. The returned handle must be Release()d.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  // Returns a handle (to be Release()d) or nullptr on miss.
  virtual Handle* Lookup(const Slice& key) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;
  virtual void Erase(const Slice& key) = 0;

  // New id for partitioning the key space among multiple users.
  virtual uint64_t NewId() = 0;

  virtual size_t TotalCharge() const = 0;
};

// LRU cache with the given total capacity (in charge units, usually bytes).
std::unique_ptr<Cache> NewLRUCache(size_t capacity);

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_CACHE_H_
