// TableBuilder: streams sorted key/value pairs into an SST file.

#ifndef P2KVS_SRC_SST_TABLE_BUILDER_H_
#define P2KVS_SRC_SST_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>

#include "src/io/env.h"
#include "src/sst/format.h"
#include "src/sst/sst_options.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace p2kvs {

class BlockBuilder;

class TableBuilder {
 public:
  // Does not take ownership of file; the caller must Sync/Close it after
  // Finish().
  TableBuilder(const SstOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // Keys must arrive in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  // Writes any buffered data block (advanced use; Add calls it as needed).
  void Flush();

  Status status() const;

  // Writes filter/metaindex/index/footer. No Add after this.
  Status Finish();

  // Discards buffered state; the file contents are undefined afterwards.
  void Abandon();

  uint64_t NumEntries() const;
  // Size of the file generated so far; accurate after Finish().
  uint64_t FileSize() const;

 private:
  bool ok() const { return status().ok(); }
  void WriteBlock(BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& data, BlockHandle* handle);

  struct Rep;
  std::unique_ptr<Rep> rep_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_TABLE_BUILDER_H_
