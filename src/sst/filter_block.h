// Filter block: one filter per 2 KiB range of data-block offsets, plus an
// offset array and base-lg trailer (leveldb layout). Built alongside the
// data blocks by TableBuilder and consulted by Table::InternalGet.

#ifndef P2KVS_SRC_SST_FILTER_BLOCK_H_
#define P2KVS_SRC_SST_FILTER_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sst/filter_policy.h"
#include "src/util/slice.h"

namespace p2kvs {

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();

  const FilterPolicy* policy_;
  std::string keys_;             // flattened key contents
  std::vector<size_t> start_;    // starting index in keys_ of each key
  std::string result_;           // filter data computed so far
  std::vector<Slice> tmp_keys_;  // argument scratch for CreateFilter()
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  // contents and policy must outlive *this.
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);

  bool KeyMayMatch(uint64_t block_offset, const Slice& key) const;

 private:
  const FilterPolicy* policy_;
  const char* data_;    // filter data (at block start)
  const char* offset_;  // beginning of offset array
  size_t num_;          // number of entries in offset array
  size_t base_lg_;      // encoding parameter (kFilterBaseLg)
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_FILTER_BLOCK_H_
