// Block: read side of BlockBuilder's format, with restart-point binary
// search for Seek.

#ifndef P2KVS_SRC_SST_BLOCK_H_
#define P2KVS_SRC_SST_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "src/sst/format.h"
#include "src/util/comparator.h"
#include "src/util/iterator.h"

namespace p2kvs {

class Block {
 public:
  explicit Block(const BlockContents& contents);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // offset in data_ of restart array
  bool owned_;               // true iff data_[] was heap-allocated for us
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_BLOCK_H_
