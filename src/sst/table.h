// Table: read-only random access to an SST file, with optional block cache
// and bloom-filter short-circuiting.

#ifndef P2KVS_SRC_SST_TABLE_H_
#define P2KVS_SRC_SST_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/io/async_io.h"
#include "src/io/env.h"
#include "src/sst/format.h"
#include "src/sst/sst_options.h"
#include "src/util/iterator.h"

namespace p2kvs {

// State of one two-phase point lookup (Table::PlanGet / Table::FinishGet).
// When PlanGet leaves need_read false the lookup already completed (index
// miss, bloom-filter miss, or block-cache hit) and FinishGet must not be
// called. Otherwise `op` is primed for AsyncIoContext::SubmitRead against
// Table::file(); once the op completes, FinishGet verifies and delivers.
struct TableGetPlan {
  bool need_read = false;
  BlockHandle handle;
  std::unique_ptr<char[]> scratch;  // owns op.scratch while the read is in flight
  AsyncIoOp op;
};

class Table {
 public:
  // Opens a table over [0..file_size) of file. On success *table is set and
  // takes ownership of file.
  static Status Open(const SstOptions& options, std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Iterator over the table's entries (keys in comparator order). The table
  // must stay open while the iterator lives.
  Iterator* NewIterator() const;

  // Calls handle_result(arg_key, arg_value) with the entry found for `key`
  // (first entry >= key whose block may contain it per the filter). Used by
  // the LSM engine's point-get path.
  Status InternalGet(const Slice& key,
                     const std::function<void(const Slice&, const Slice&)>& handle_result);

  // Phase 1 of a batched point lookup: index seek, bloom-filter check, and
  // block-cache probe — everything InternalGet does short of the data-block
  // read. A lookup that resolves here (cache hit delivers through
  // handle_result exactly as InternalGet would) leaves plan->need_read false.
  // Otherwise the caller submits plan->op (against file()) together with the
  // rest of the batch and calls FinishGet after it completes.
  Status PlanGet(const Slice& key, TableGetPlan* plan,
                 const std::function<void(const Slice&, const Slice&)>& handle_result);

  // Phase 2: CRC-verifies the completed read, builds the block (inserting it
  // into the block cache like the synchronous path), then seeks and delivers
  // the entry to handle_result.
  Status FinishGet(const Slice& key, TableGetPlan* plan,
                   const std::function<void(const Slice&, const Slice&)>& handle_result);

  // The underlying file, for submitting a TableGetPlan's read. The table must
  // stay open (pinned in the TableCache) while the op is in flight.
  RandomAccessFile* file() const;

  // Approximate file offset where key's data begins (for size estimates).
  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;

  explicit Table(Rep* rep);

  static Iterator* BlockReader(void* table, const Slice& index_value);
  void ReadMeta(const Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);

  std::unique_ptr<Rep> rep_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_TABLE_H_
