// Table: read-only random access to an SST file, with optional block cache
// and bloom-filter short-circuiting.

#ifndef P2KVS_SRC_SST_TABLE_H_
#define P2KVS_SRC_SST_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/io/env.h"
#include "src/sst/format.h"
#include "src/sst/sst_options.h"
#include "src/util/iterator.h"

namespace p2kvs {

class Table {
 public:
  // Opens a table over [0..file_size) of file. On success *table is set and
  // takes ownership of file.
  static Status Open(const SstOptions& options, std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Iterator over the table's entries (keys in comparator order). The table
  // must stay open while the iterator lives.
  Iterator* NewIterator() const;

  // Calls handle_result(arg_key, arg_value) with the entry found for `key`
  // (first entry >= key whose block may contain it per the filter). Used by
  // the LSM engine's point-get path.
  Status InternalGet(const Slice& key,
                     const std::function<void(const Slice&, const Slice&)>& handle_result);

  // Approximate file offset where key's data begins (for size estimates).
  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;

  explicit Table(Rep* rep);

  static Iterator* BlockReader(void* table, const Slice& index_value);
  void ReadMeta(const Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);

  std::unique_ptr<Rep> rep_;
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_SST_TABLE_H_
