// Internal key format shared by the MemTable, SSTs and the LSM engine:
//   internal_key = user_key + 8 bytes of (sequence << 8 | value_type)
// Internal keys sort by user key ascending, then sequence descending, so the
// newest version of a key is encountered first.

#ifndef P2KVS_SRC_MEMTABLE_DBFORMAT_H_
#define P2KVS_SRC_MEMTABLE_DBFORMAT_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/slice.h"

namespace p2kvs {

using SequenceNumber = uint64_t;

// Leaves room for the 8-bit type tag.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// Used when seeking: both value types are interesting, and kTypeValue sorts
// *before* kTypeDeletion within equal (user_key, sequence).
static const ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

// Returns false on malformed input.
inline bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < 8) {
    return false;
  }
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  return c <= static_cast<uint8_t>(kTypeValue);
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Orders internal keys: user key ascending, then (sequence, type) descending.
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}

  const char* Name() const override { return "p2kvs.InternalKeyComparator"; }

  int Compare(const Slice& a, const Slice& b) const override {
    int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
    if (r == 0) {
      const uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
      if (anum > bnum) {
        r = -1;
      } else if (anum < bnum) {
        r = +1;
      }
    }
    return r;
  }

  void FindShortestSeparator(std::string* start, const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

// An internal key as an owned string; convenience wrapper used by version
// metadata (smallest/largest keys of an SST).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

// Bundles the key formats a point lookup needs: the length-prefixed memtable
// key, the internal key, and the user key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  // varint32(internal_key_len) + user_key + tag  (MemTable entry key format).
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_MEMTABLE_DBFORMAT_H_
