#include "src/memtable/memtable.h"

#include "src/util/coding.h"

namespace p2kvs {

static Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: varint32 never exceeds 5 bytes
  return Slice(p, len);
}

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), table_(comparator_, &arena_) {}

int MemTable::KeyComparator::operator()(const char* aptr, const char* bptr) const {
  // Internal keys are encoded as length-prefixed strings.
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

// Encodes a lookup target in the memtable key format into *scratch.
static const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(const MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;  // for passing to EncodeKey
};

Iterator* MemTable::NewIterator() const { return new MemTableIterator(&table_); }

void MemTable::Add(SequenceNumber s, ValueType type, const Slice& key, const Slice& value,
                   bool concurrent) {
  // Entry format:
  //   varint32 internal_key_size   (== key.size() + 8)
  //   char[]   user key
  //   uint64   tag (sequence << 8 | type)
  //   varint32 value_size
  //   char[]   value
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) + internal_key_size +
                             VarintLength(val_size) + val_size;
  char* buf = arena_.AllocateAligned(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(s, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  if (concurrent) {
    table_.InsertConcurrently(buf);
  } else {
    table_.Insert(buf);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) const {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // The seek landed on the first entry with internal key >= lookup key.
    // Check that the user key matches (sequence/type may differ).
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.user_comparator()->Compare(Slice(key_ptr, key_length - 8),
                                                          key.user_key()) == 0) {
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          *s = Status::OK();
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

}  // namespace p2kvs
