#include "src/memtable/dbformat.h"

namespace p2kvs {

void InternalKeyComparator::FindShortestSeparator(std::string* start, const Slice& limit) const {
  // Shorten the user-key part if possible, then tag with the maximal
  // (seq, type) so the result sorts before equal user keys.
  Slice user_start = ExtractUserKey(*start);
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() && user_comparator_->Compare(user_start, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(*start, tmp) < 0);
    assert(Compare(tmp, limit) < 0);
    start->swap(tmp);
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(*key);
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() && user_comparator_->Compare(user_key, tmp) < 0) {
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(*key, tmp) < 0);
    key->swap(tmp);
  }
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // conservative
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  std::memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) {
    delete[] start_;
  }
}

}  // namespace p2kvs
