// Arena-backed skiplist with two insertion modes:
//   * Insert()             — single writer, concurrent readers (LevelDB's
//                            vanilla MemTable index).
//   * InsertConcurrently() — CAS-based multi-writer insertion (RocksDB's
//                            "concurrent MemTable", paper §2.2).
// Readers never lock in either mode. Keys must be unique (internal keys
// embed a unique sequence number, so this holds by construction).

#ifndef P2KVS_SRC_MEMTABLE_SKIPLIST_H_
#define P2KVS_SRC_MEMTABLE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "src/util/arena.h"
#include "src/util/random.h"

namespace p2kvs {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  // Keys and nodes are allocated in *arena, which must outlive the list.
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Single-writer insertion; requires external serialization of writers.
  void Insert(const Key& key);

  // Lock-free multi-writer insertion.
  void InsertConcurrently(const Key& key);

  bool Contains(const Key& key) const;

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }
    void Seek(const Key& target) { node_ = list_->FindGreaterOrEqual(target, nullptr); }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  enum { kMaxHeight = 12 };

  inline int GetMaxHeight() const { return max_height_.load(std::memory_order_relaxed); }

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const { return (compare_(a, b) == 0); }
  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  // Returns the earliest node >= key; fills prev[0..max_height-1] if non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;
  // Returns the latest node < key (head_ if none).
  Node* FindLessThan(const Key& key) const;
  Node* FindLast() const;

  // Finds the (prev, next) pair bracketing key at `level`, starting the walk
  // at `before` (which must be < key at that level).
  void FindSpliceForLevel(const Key& key, Node* before, int level, Node** out_prev,
                          Node** out_next) const;

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;

  // Height of the entire list; only increases.
  std::atomic<int> max_height_;

  // Single-writer RNG; the concurrent path uses a thread_local instead.
  Random rnd_;
};

template <typename Key, class Comparator>
struct SkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  Node* Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_release);
  }
  bool CasNext(int n, Node* expected, Node* x) {
    assert(n >= 0);
    // Release on success pairs with the acquire in Next(): x's lower-level
    // pointers (written with NoBarrier_SetNext) must be visible before x is
    // reachable. On failure only `expected` is refreshed, and the caller
    // recomputes the splice through acquire loads, so relaxed suffices.
    return next_[n].compare_exchange_strong(expected, x, std::memory_order_release,
                                            std::memory_order_relaxed);
  }
  Node* NoBarrier_Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_relaxed);
  }
  void NoBarrier_SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_relaxed);
  }

 private:
  // Array of length equal to the node height; next_[0] is the lowest level.
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::NewNode(const Key& key,
                                                                             int height) {
  char* const node_memory =
      arena_->AllocateAligned(sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  // Branch with probability 1/4 per level.
  static const unsigned int kBranching = 4;
  thread_local Random t_rnd(0xdeadbeef ^ static_cast<uint32_t>(
                                             reinterpret_cast<uintptr_t>(&t_rnd) >> 4));
  int height = 1;
  while (height < kMaxHeight && t_rnd.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::FindGreaterOrEqual(
    const Key& key, Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) {
        prev[level] = x;
      }
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::FindLessThan(
    const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    assert(x == head_ || compare_(x->key, key) < 0);
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::FindSpliceForLevel(const Key& key, Node* before, int level,
                                                   Node** out_prev, Node** out_next) const {
  Node* x = before;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      *out_prev = x;
      *out_next = next;
      return;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key() /* any key will do */, kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  // No duplicate insertion allowed.
  assert(x == nullptr || !Equal(key, x->key));
  (void)x;

  int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; i++) {
      prev[i] = head_;
    }
    // Concurrent readers observing the new height see either nullptr from
    // head_ (fine) or the new node.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
    prev[i]->SetNext(i, x);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::InsertConcurrently(const Key& key) {
  const int height = RandomHeight();

  // Raise the list height first; racing raisers all succeed eventually.
  // Relaxed is enough on both sides: max_height_ carries no payload — a
  // reader seeing the new height before the taller node is linked just finds
  // nullptr from head_ at the upper levels, which is valid (see Insert()).
  int max_h = max_height_.load(std::memory_order_relaxed);
  while (height > max_h) {
    if (max_height_.compare_exchange_weak(max_h, height, std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
      break;
    }
  }

  // Compute the splice top-down (O(log n)): the walk at level L starts from
  // the predecessor found at level L+1. The descent begins at the *list*
  // height so low-level walks are short.
  const int list_height = GetMaxHeight();  // >= height after the raise above
  Node* prev[kMaxHeight];
  Node* next[kMaxHeight];
  Node* before = head_;
  for (int level = list_height - 1; level >= 0; level--) {
    FindSpliceForLevel(key, before, level, &prev[level], &next[level]);
    before = prev[level];
  }

  Node* x = NewNode(key, height);
  for (int level = 0; level < height; level++) {
    while (true) {
      x->NoBarrier_SetNext(level, next[level]);
      if (prev[level]->CasNext(level, next[level], x)) {
        break;
      }
      // Lost a race at this level; recompute the splice from the last known
      // predecessor (still < key) and retry.
      FindSpliceForLevel(key, prev[level], level, &prev[level], &next[level]);
    }
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace p2kvs

#endif  // P2KVS_SRC_MEMTABLE_SKIPLIST_H_
