// MemTable: the in-memory write buffer indexed by a skiplist. Supports both
// single-writer Add (LevelDB semantics) and concurrent Add (RocksDB's
// concurrent MemTable) — the distinction the paper's Figure 8b explores.

#ifndef P2KVS_SRC_MEMTABLE_MEMTABLE_H_
#define P2KVS_SRC_MEMTABLE_MEMTABLE_H_

#include <string>

#include "src/memtable/dbformat.h"
#include "src/memtable/skiplist.h"
#include "src/util/arena.h"
#include "src/util/iterator.h"
#include "src/util/status.h"

namespace p2kvs {

class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);
  ~MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Approximate bytes in use (entries + index nodes).
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  // Number of entries added.
  uint64_t NumEntries() const { return num_entries_.load(std::memory_order_relaxed); }

  // Iterator over the memtable; keys are internal keys. The memtable must
  // outlive the iterator.
  Iterator* NewIterator() const;

  // Adds an entry that maps key to value at the specified sequence number.
  // `concurrent` selects InsertConcurrently (callers may then Add from many
  // threads at once); otherwise callers must serialize.
  void Add(SequenceNumber seq, ValueType type, const Slice& key, const Slice& value,
           bool concurrent = false);

  // If the memtable contains the newest entry for key at or below the lookup
  // snapshot: returns true and sets *value (or *s to NotFound for a
  // deletion). Returns false if the key is absent from this memtable.
  bool Get(const LookupKey& key, std::string* value, Status* s) const;

 private:
  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    // Keys are varint32-length-prefixed internal keys.
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  friend class MemTableIterator;

  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace p2kvs

#endif  // P2KVS_SRC_MEMTABLE_MEMTABLE_H_
