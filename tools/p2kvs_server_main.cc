// Standalone p2kvs server: the binary-protocol data plane (src/server) plus
// the HTTP admin/observability plane (src/server/admin.h) over one store.
//
//   p2kvs_server --path=/tmp/db --port=4100 --admin-port=4190
//       --workers=4 --metrics-window-ms=1000 --sketch-k=32 --demo-traffic
//
// Prints one machine-readable READY line once both listeners are up:
//
//   READY data_port=4100 admin_port=4190
//
// (ports are kernel-assigned when the flags are 0 or omitted — the READY
// line is how scripts learn them; the CI /metrics scrape smoke parses it).
// --demo-traffic drives a light Zipfian read/write mix through the async
// interface so the telemetry plane has live data to show. SIGINT / SIGTERM
// shut down cleanly: admin first, then the data plane, then the store.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/core/p2kvs.h"
#include "src/server/admin.h"
#include "src/server/server.h"
#include "src/ycsb/generator.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_release); }

// --flag=value parsing; every flag has a default so `p2kvs_server` alone runs.
struct Flags {
  std::string path = "/tmp/p2kvs_server_db";
  int port = 0;        // data plane; 0 = kernel-assigned
  int admin_port = 0;  // admin plane; 0 = kernel-assigned
  int workers = 4;
  int metrics_window_ms = 1000;
  int sketch_k = 32;
  int stats_dump_period_ms = 0;
  bool trace = false;
  bool demo_traffic = false;
  int demo_ops_per_sec = 2000;
  int duration_s = 0;  // 0 = run until a signal arrives
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "--path", &v)) {
      f->path = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      f->port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--admin-port", &v)) {
      f->admin_port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      f->workers = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--metrics-window-ms", &v)) {
      f->metrics_window_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--sketch-k", &v)) {
      f->sketch_k = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--stats-dump-period-ms", &v)) {
      f->stats_dump_period_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--demo-ops-per-sec", &v)) {
      f->demo_ops_per_sec = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--duration-s", &v)) {
      f->duration_s = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      f->trace = true;
    } else if (std::strcmp(argv[i], "--demo-traffic") == 0) {
      f->demo_traffic = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "usage: p2kvs_server [--path=DIR] [--port=N] [--admin-port=N]\n"
                   "    [--workers=N] [--metrics-window-ms=N] [--sketch-k=N]\n"
                   "    [--stats-dump-period-ms=N] [--trace] [--duration-s=N]\n"
                   "    [--demo-traffic] [--demo-ops-per-sec=N]\n",
                   argv[i]);
      return false;
    }
  }
  return true;
}

// A light skewed read/write mix through the async interface. Paced in small
// bursts; the callbacks discard results — the point is live telemetry, not
// measurement (bench/ owns measurement).
void DemoTrafficLoop(p2kvs::P2KVS* store, int ops_per_sec) {
  constexpr uint64_t kKeys = 10000;
  p2kvs::ycsb::ZipfianGenerator gen(kKeys, /*seed=*/42, /*theta=*/0.99);
  const int burst = ops_per_sec > 100 ? ops_per_sec / 100 : 1;
  uint64_t seq = 0;
  while (!g_stop.load(std::memory_order_acquire)) {
    for (int i = 0; i < burst; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "user%08llu",
                    static_cast<unsigned long long>(gen.Next()));
      if (++seq % 4 == 0) {
        store->PutAsync(key, "demo-value", [](const p2kvs::Status&) {});
      } else {
        store->GetAsync(key, [](const p2kvs::Status&, std::string) {});
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  p2kvs::P2kvsOptions options;
  options.num_workers = flags.workers;
  options.pin_workers = false;  // a service binary should not assume free cores
  options.enable_stats = true;
  options.hot_key_sketch_k = static_cast<size_t>(flags.sketch_k);
  options.metrics_window_ms = flags.metrics_window_ms;
  options.stats_dump_period_ms = flags.stats_dump_period_ms;
  if (flags.trace) {
    options.trace.enabled = true;
  }

  std::unique_ptr<p2kvs::P2KVS> store;
  p2kvs::Status s = p2kvs::P2KVS::Open(options, flags.path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", flags.path.c_str(), s.ToString().c_str());
    return 1;
  }

  p2kvs::server::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.port);
  p2kvs::server::Server data_plane(store.get(), server_options);
  s = data_plane.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "data plane: %s\n", s.ToString().c_str());
    return 1;
  }

  p2kvs::server::AdminOptions admin_options;
  admin_options.port = static_cast<uint16_t>(flags.admin_port);
  p2kvs::server::AdminServer admin(store.get(), admin_options);
  s = admin.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "admin plane: %s\n", s.ToString().c_str());
    data_plane.Stop();
    return 1;
  }

  std::printf("READY data_port=%u admin_port=%u\n", data_plane.port(), admin.port());
  std::printf("admin: curl http://127.0.0.1:%u/metrics\n", admin.port());
  std::fflush(stdout);

  std::thread demo;
  if (flags.demo_traffic) {
    demo = std::thread(DemoTrafficLoop, store.get(), flags.demo_ops_per_sec);
  }

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_acquire)) {
    if (flags.duration_s > 0 &&
        std::chrono::steady_clock::now() - start >= std::chrono::seconds(flags.duration_s)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  g_stop.store(true, std::memory_order_release);

  if (demo.joinable()) {
    demo.join();
  }
  admin.Stop();
  data_plane.Stop();
  store.reset();
  std::printf("shut down cleanly\n");
  return 0;
}
